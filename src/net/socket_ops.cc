#include "net/socket_ops.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <unordered_set>

namespace nano::net {

namespace {

bool setNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

std::string errnoText(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

class PosixSocketOps final : public SocketOps {
 public:
  PosixSocketOps() {
    if (::pipe(wakePipe_) == 0) {
      setNonBlocking(wakePipe_[0]);
      setNonBlocking(wakePipe_[1]);
    } else {
      wakePipe_[0] = wakePipe_[1] = -1;
    }
  }

  ~PosixSocketOps() override {
    if (wakePipe_[0] >= 0) ::close(wakePipe_[0]);
    if (wakePipe_[1] >= 0) ::close(wakePipe_[1]);
  }

  int listenTcp(const std::string& host, int port,
                std::string& error) override {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      error = errnoText("socket");
      return -1;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      error = "invalid listen address \"" + host + "\" (IPv4 dotted quad)";
      ::close(fd);
      return -1;
    }
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      error = errnoText("bind");
      ::close(fd);
      return -1;
    }
    if (::listen(fd, 128) != 0 || !setNonBlocking(fd)) {
      error = errnoText("listen");
      ::close(fd);
      return -1;
    }
    tcpListeners_.insert(fd);
    return fd;
  }

  int listenUnix(const std::string& path, std::string& error) override {
    sockaddr_un addr{};
    if (path.size() >= sizeof(addr.sun_path)) {
      error = "unix socket path too long: " + path;
      return -1;
    }
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      error = errnoText("socket");
      return -1;
    }
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    ::unlink(path.c_str());  // replace a stale socket file
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      error = errnoText("bind " + path);
      ::close(fd);
      return -1;
    }
    if (::listen(fd, 128) != 0 || !setNonBlocking(fd)) {
      error = errnoText("listen " + path);
      ::close(fd);
      return -1;
    }
    return fd;
  }

  int localPort(int listenFd) override {
    if (tcpListeners_.count(listenFd) == 0) return -1;
    sockaddr_in addr{};
    socklen_t len = sizeof(addr);
    if (::getsockname(listenFd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
      return -1;
    }
    return static_cast<int>(ntohs(addr.sin_port));
  }

  int accept(int listenFd) override {
    const int fd = ::accept(listenFd, nullptr, nullptr);
    if (fd < 0) return -1;
    if (!setNonBlocking(fd)) {
      ::close(fd);
      return -1;
    }
    return fd;
  }

  long read(int fd, char* buf, std::size_t n) override {
    while (true) {
      const ssize_t got = ::recv(fd, buf, n, 0);
      if (got >= 0) return static_cast<long>(got);
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return kIoWouldBlock;
      return kIoError;
    }
  }

  long write(int fd, const char* buf, std::size_t n) override {
    while (true) {
      // MSG_NOSIGNAL: a client that closed mid-response must surface as
      // kIoError on this connection, not SIGPIPE the whole process.
      const ssize_t put = ::send(fd, buf, n, MSG_NOSIGNAL);
      if (put >= 0) return static_cast<long>(put);
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return kIoWouldBlock;
      return kIoError;
    }
  }

  void close(int fd) override {
    tcpListeners_.erase(fd);
    ::close(fd);
  }

  int poll(std::vector<PollItem>& items, int timeoutMs) override {
    std::vector<pollfd> fds;
    fds.reserve(items.size() + 1);
    for (const PollItem& item : items) {
      pollfd p{};
      p.fd = item.fd;
      if (item.wantRead) p.events |= POLLIN;
      if (item.wantWrite) p.events |= POLLOUT;
      fds.push_back(p);
    }
    pollfd wakeFd{};
    wakeFd.fd = wakePipe_[0];
    wakeFd.events = POLLIN;
    fds.push_back(wakeFd);

    int got;
    do {
      got = ::poll(fds.data(), fds.size(), timeoutMs);
    } while (got < 0 && errno == EINTR);
    if (got <= 0) return 0;

    if ((fds.back().revents & POLLIN) != 0) {
      char drain[64];
      while (::read(wakePipe_[0], drain, sizeof(drain)) > 0) {
      }
      --got;
    }
    int ready = 0;
    for (std::size_t i = 0; i < items.size(); ++i) {
      const short re = fds[i].revents;
      items[i].readable = (re & (POLLIN | POLLHUP)) != 0;
      items[i].writable = (re & POLLOUT) != 0;
      items[i].broken = (re & (POLLERR | POLLNVAL)) != 0;
      if (items[i].readable || items[i].writable || items[i].broken) ++ready;
    }
    return ready;
  }

  void wake() override {
    if (wakePipe_[1] >= 0) {
      const char byte = 1;
      // Async-signal-safe; a full pipe just means a wake is already
      // pending, which is all we need.
      [[maybe_unused]] const ssize_t ignored =
          ::write(wakePipe_[1], &byte, 1);
    }
  }

 private:
  int wakePipe_[2];
  std::unordered_set<int> tcpListeners_;  ///< receive thread only
};

}  // namespace

std::unique_ptr<SocketOps> makePosixSocketOps() {
  return std::make_unique<PosixSocketOps>();
}

}  // namespace nano::net
