// In-memory loopback double for SocketOps: connections are pairs of byte
// buffers under one mutex, poll() is a condition-variable wait, and the
// test drives the client side directly (connect/send/half-close/read).
// The multi-client suites run the full NetServer receive loop against
// this with zero real sockets, which makes them deterministic (no
// ephemeral-port races, no kernel buffer sizing) and TSan-friendly.
//
// The server-to-client direction has a configurable capacity so tests
// can simulate a client that stops reading: write() returns short counts
// and then kIoWouldBlock exactly like a full kernel send buffer would.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "net/socket_ops.h"

namespace nano::net {

class MockSocketOps final : public SocketOps {
 public:
  MockSocketOps() = default;

  // ------------------------------------------------ SocketOps (server)
  int listenTcp(const std::string& host, int port, std::string& error) override;
  int listenUnix(const std::string& path, std::string& error) override;
  int localPort(int listenFd) override;
  int accept(int listenFd) override;
  long read(int fd, char* buf, std::size_t n) override;
  long write(int fd, const char* buf, std::size_t n) override;
  void close(int fd) override;
  int poll(std::vector<PollItem>& items, int timeoutMs) override;
  void wake() override;

  // ------------------------------------------------- test client side
  /// Connect to a TCP listener by its (mock) port, or a Unix listener by
  /// path. Returns the client-side handle, or -1 when nothing listens
  /// there. The connection is visible to the server's poll()/accept()
  /// immediately.
  int connectTcp(int port);
  int connectUnix(const std::string& path);

  /// Queue bytes for the server to read (unbounded on this side — the
  /// server's backpressure, not the test's, is what is under test).
  void clientSend(int clientFd, std::string_view bytes);
  /// Half-close: the server sees EOF after draining what was sent, like
  /// shutdown(SHUT_WR).
  void clientCloseWrite(int clientFd);
  /// Full close from the client.
  void clientClose(int clientFd);

  /// Blocking read of whatever the server has sent (waits up to
  /// `timeoutMs` for the first byte). Returns false at EOF-and-empty.
  bool clientRead(int clientFd, std::string& out, int timeoutMs);
  /// Read until the server closes its side; returns everything.
  std::string clientReadAll(int clientFd, int timeoutMs = 30000);
  /// True once the server closed its side of this connection.
  bool serverClosed(int clientFd);

  /// Cap the server-to-client buffer for connections made AFTER this
  /// call (0 = unlimited). This is "the client stopped reading": server
  /// writes past the cap come back short / would-block.
  void setClientRecvCapacity(std::size_t bytes);

 private:
  struct Listener {
    bool tcp = false;
    int port = 0;
    std::string path;
    std::deque<int> pendingServerFds;  ///< awaiting accept()
  };

  /// One direction of a connection.
  struct Pipe {
    std::string buf;
    bool writerClosed = false;
  };

  /// One connection; both fds map to the same shared state.
  struct Conn {
    int serverFd = -1;
    int clientFd = -1;
    Pipe toServer;                ///< client writes, server reads
    Pipe toClient;                ///< server writes, client reads
    std::size_t toClientCap = 0;  ///< 0 = unlimited
    bool serverClosed = false;    ///< server called close()
    bool clientClosed = false;    ///< client called clientClose()
  };
  using ConnPtr = std::shared_ptr<Conn>;

  int connectLocked(Listener& listener);
  ConnPtr serverConnLocked(int fd) const;
  ConnPtr clientConnLocked(int fd) const;
  bool serverReadableLocked(const Conn& c) const;
  bool serverWritableLocked(const Conn& c) const;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::map<int, Listener> listeners_;  ///< keyed by listener fd
  std::map<int, ConnPtr> byFd_;        ///< both halves, keyed by fd
  int nextFd_ = 1000;
  int nextPort_ = 45000;
  std::size_t clientRecvCapacity_ = 0;
  bool wakePending_ = false;
};

}  // namespace nano::net
