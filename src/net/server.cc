#include "net/server.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "obs/obs.h"
#include "svc/request.h"

namespace nano::net {

namespace {

std::int64_t monotonicNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

NetServer::NetServer(svc::Service& service, NetServerOptions options,
                     std::unique_ptr<SocketOps> ops)
    : service_(service),
      options_(std::move(options)),
      ops_(ops ? std::move(ops) : makePosixSocketOps()) {}

NetServer::~NetServer() { stop(); }

bool NetServer::start(std::string& error) {
  if (options_.tcpPort < 0 && options_.unixPath.empty()) {
    error = "no listener configured (need a TCP port or a unix path)";
    return false;
  }
  if (options_.tcpPort >= 0) {
    const int fd = ops_->listenTcp(options_.tcpHost, options_.tcpPort, error);
    if (fd < 0) return false;
    listenFds_.push_back(fd);
    boundTcpPort_ = ops_->localPort(fd);
  }
  if (!options_.unixPath.empty()) {
    const int fd = ops_->listenUnix(options_.unixPath, error);
    if (fd < 0) {
      for (const int lfd : listenFds_) ops_->close(lfd);
      listenFds_.clear();
      return false;
    }
    listenFds_.push_back(fd);
  }
  started_ = true;
  receiver_ = std::thread([this] { receiveLoop(); });
  return true;
}

void NetServer::requestStop() {
  stopRequested_.store(true, std::memory_order_release);
  ops_->wake();
}

void NetServer::wait() {
  if (!started_) return;
  std::call_once(stopOnce_, [this] {
    receiver_.join();
    // Everything the sessions admitted is already emitted (the loop only
    // exits once every session finished), but direct submitters may still
    // be in flight; leave the service itself fully quiesced too.
    service_.drain();
  });
}

void NetServer::stop() {
  if (!started_) return;
  requestStop();
  wait();
}

// ------------------------------------------------------------- the loop

void NetServer::receiveLoop() {
  std::vector<PollItem> items;
  while (true) {
    if (stopRequested_.load(std::memory_order_acquire) && !draining_) {
      beginDrain();
    }
    for (auto& [fd, conn] : conns_) pumpLines(*conn);
    for (auto& [fd, conn] : conns_) flushWrites(*conn);
    closeIdle();
    reapFinished();
    if (draining_ && conns_.empty()) break;

    items.clear();
    for (const int lfd : listenFds_) {
      PollItem item;
      item.fd = lfd;
      item.wantRead = true;
      items.push_back(item);
    }
    const std::size_t firstConn = items.size();
    for (auto& [fd, conn] : conns_) {
      PollItem item;
      item.fd = fd;
      item.wantRead = wantsRead(*conn);
      item.wantWrite = !conn->doomed && hasOutbound(*conn);
      items.push_back(item);
    }

    int timeoutMs = draining_ ? 100 : 1000;
    if (options_.idleTimeoutMs > 0) {
      timeoutMs = std::min(timeoutMs, options_.idleTimeoutMs / 4 + 1);
    }
    ops_->poll(items, timeoutMs);

    for (std::size_t i = 0; i < firstConn; ++i) {
      if (items[i].readable) acceptPending(items[i].fd);
    }
    for (std::size_t i = firstConn; i < items.size(); ++i) {
      const auto it = conns_.find(items[i].fd);
      if (it == conns_.end()) continue;
      Connection& conn = *it->second;
      if (items[i].broken) {
        doomConnection(conn);
      } else if (items[i].readable) {
        readInto(conn);
      }
      // Writable progress is made by the flushWrites() sweep at the top
      // of the loop, which also runs for wake()-driven emitter pushes.
    }
  }
}

void NetServer::beginDrain() {
  draining_ = true;
  for (const int lfd : listenFds_) ops_->close(lfd);
  listenFds_.clear();
  // Treat every connection as if the client half-closed: buffered lines
  // still run, admitted work still answers, then the socket closes.
  for (auto& [fd, conn] : conns_) conn->inputEof = true;
}

// -------------------------------------------------------------- intake

void NetServer::acceptPending(int listenFd) {
  while (true) {
    const int fd = ops_->accept(listenFd);
    if (fd < 0) break;
    if (draining_ || conns_.size() >= options_.maxClients) {
      shedConnection(fd);
      continue;
    }
    ++stats_.accepted;
    NANO_OBS_COUNT("net/accepted", 1);
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->lastActivityNs = monotonicNowNs();
    Connection* raw = conn.get();
    conn->session = std::make_unique<svc::Session>(
        service_, options_.session,
        [this, raw](std::string&& line) {
          enqueueOutput(*raw, std::move(line));
        },
        service_.newSessionId());
    // Whenever a session empties, the loop must re-check reap/backpressure.
    conn->session->setDrainedCallback([this] { ops_->wake(); });
    conns_.emplace(fd, std::move(conn));
    connCount_.store(conns_.size(), std::memory_order_release);
    NANO_OBS_GAUGE("net/active_connections",
                   static_cast<double>(conns_.size()));
  }
}

void NetServer::shedConnection(int fd) {
  ++stats_.shedConnections;
  NANO_OBS_COUNT("net/shed_connections", 1);
  // Same structured shape as the scheduler's queue-full shed, so clients
  // handle admission-limit and overload rejections with one code path.
  svc::Response response;
  response.status = svc::ResponseStatus::Shed;
  response.error = draining_
                       ? "server draining"
                       : "max clients (" + std::to_string(options_.maxClients) +
                             " connections)";
  const std::string line = response.toJsonLine() + '\n';
  // Best effort: the connection is being dropped either way, and a fresh
  // socket's send buffer always fits one line.
  ops_->write(fd, line.data(), line.size());
  ops_->close(fd);
}

void NetServer::readInto(Connection& c) {
  if (c.doomed || c.inputEof) return;
  char buf[4096];
  while (true) {
    const long got = ops_->read(c.fd, buf, sizeof(buf));
    if (got == kIoWouldBlock) break;
    if (got == kIoError) {
      doomConnection(c);
      return;
    }
    if (got == 0) {
      c.inputEof = true;
      break;
    }
    NANO_OBS_COUNT("net/bytes_in", got);
    c.lastActivityNs = monotonicNowNs();
    c.readBuf.append(buf, static_cast<std::size_t>(got));
    std::size_t pos;
    while ((pos = c.readBuf.find('\n')) != std::string::npos) {
      std::string line = c.readBuf.substr(0, pos);
      c.readBuf.erase(0, pos + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (!line.empty()) c.pendingLines.push_back(std::move(line));
    }
    if (c.readBuf.size() > options_.maxLineBytes) {
      ++stats_.oversizeCloses;
      NANO_OBS_COUNT("net/oversize_closes", 1);
      doomConnection(c);
      return;
    }
    // Stop mid-burst once a full queue's worth of lines is already
    // framed; wantsRead() keeps the pause until the session drains.
    if (c.pendingLines.size() >= options_.session.emitQueueLimit) break;
  }
}

void NetServer::pumpLines(Connection& c) {
  if (c.doomed) return;
  // Only this thread pushes into the session, so a gap between the gate
  // and consumeLine can only see pendingResponses() shrink — the call
  // below never blocks the receive thread.
  while (!c.pendingLines.empty() &&
         c.session->pendingResponses() < options_.session.emitQueueLimit) {
    const std::string line = std::move(c.pendingLines.front());
    c.pendingLines.pop_front();
    NANO_OBS_COUNT("net/lines_in", 1);
    c.session->consumeLine(line);
    c.lastActivityNs = monotonicNowNs();
  }
  if (c.inputEof && c.pendingLines.empty() && !c.inputClosed) {
    c.session->closeInput();
    c.inputClosed = true;
  }
}

bool NetServer::wantsRead(Connection& c) const {
  if (c.doomed || c.inputEof) return false;
  const bool paused =
      c.pendingLines.size() >= options_.session.emitQueueLimit ||
      c.session->pendingResponses() >= options_.session.emitQueueLimit;
  if (paused && !c.readPaused) NANO_OBS_COUNT("net/read_pauses", 1);
  c.readPaused = paused;
  return !paused;
}

// -------------------------------------------------------------- output

void NetServer::enqueueOutput(Connection& c, std::string&& line) {
  const std::size_t bytes = line.size();
  {
    std::lock_guard<std::mutex> lock(c.outMutex);
    c.outBytes += bytes;
    c.outQueue.push_back(std::move(line));
  }
  adjustOutstanding(static_cast<std::ptrdiff_t>(bytes));
  ops_->wake();
}

void NetServer::adjustOutstanding(std::ptrdiff_t delta) {
  const std::ptrdiff_t now =
      outstandingBytes_.fetch_add(delta, std::memory_order_acq_rel) + delta;
  NANO_OBS_GAUGE("net/write_queue_bytes", static_cast<double>(now));
  std::ptrdiff_t peak = peakOutstanding_.load(std::memory_order_relaxed);
  while (now > peak && !peakOutstanding_.compare_exchange_weak(
                           peak, now, std::memory_order_relaxed)) {
  }
  if (now > peak) {
    NANO_OBS_GAUGE("net/write_queue_peak", static_cast<double>(now));
  }
}

bool NetServer::hasOutbound(Connection& c) {
  if (!c.writeHead.empty()) return true;
  std::lock_guard<std::mutex> lock(c.outMutex);
  return !c.outQueue.empty();
}

void NetServer::flushWrites(Connection& c) {
  if (c.doomed) return;
  while (true) {
    if (c.writeOff == c.writeHead.size()) {
      c.writeHead.clear();
      c.writeOff = 0;
      std::lock_guard<std::mutex> lock(c.outMutex);
      if (c.outQueue.empty()) break;
      c.writeHead = std::move(c.outQueue.front());
      c.outQueue.pop_front();
    }
    const long put = ops_->write(c.fd, c.writeHead.data() + c.writeOff,
                                 c.writeHead.size() - c.writeOff);
    if (put == kIoWouldBlock) break;
    if (put == kIoError) {
      doomConnection(c);
      return;
    }
    c.writeOff += static_cast<std::size_t>(put);
    NANO_OBS_COUNT("net/bytes_out", put);
    {
      std::lock_guard<std::mutex> lock(c.outMutex);
      c.outBytes -= static_cast<std::size_t>(put);
    }
    adjustOutstanding(-put);
    c.lastActivityNs = monotonicNowNs();
  }
  std::size_t unread;
  {
    std::lock_guard<std::mutex> lock(c.outMutex);
    unread = c.outBytes;
  }
  if (unread > options_.maxWriteBufferBytes) {
    ++stats_.slowClientCloses;
    NANO_OBS_COUNT("net/slow_client_closes", 1);
    doomConnection(c);
  }
}

// ------------------------------------------------------------ lifecycle

void NetServer::doomConnection(Connection& c) {
  if (c.doomed) return;
  c.doomed = true;
  c.readBuf.clear();
  c.pendingLines.clear();
  if (!c.inputClosed) {
    c.session->closeInput();
    c.inputClosed = true;
  }
  // Output already queued (and whatever the emitter still pushes while it
  // drains) is discarded at reap; it is bounded by the emit-queue limit.
}

void NetServer::closeIdle() {
  if (options_.idleTimeoutMs <= 0 || draining_) return;
  const std::int64_t cutoffNs =
      monotonicNowNs() -
      static_cast<std::int64_t>(options_.idleTimeoutMs) * 1'000'000;
  for (auto& [fd, conn] : conns_) {
    Connection& c = *conn;
    if (c.doomed || c.inputEof) continue;
    const bool quiet = c.pendingLines.empty() && c.readBuf.empty() &&
                       c.session->pendingResponses() == 0 && !hasOutbound(c);
    if (quiet && c.lastActivityNs < cutoffNs) {
      ++stats_.idleCloses;
      NANO_OBS_COUNT("net/idle_closes", 1);
      // Graceful: same path as a client half-close with nothing buffered.
      c.inputEof = true;
    }
  }
}

void NetServer::reapFinished() {
  std::vector<int> done;
  for (auto& [fd, conn] : conns_) {
    Connection& c = *conn;
    if (!c.inputClosed || !c.session->finished()) continue;
    if (!c.doomed && hasOutbound(c)) continue;  // still flushing
    done.push_back(fd);
  }
  for (const int fd : done) {
    const auto it = conns_.find(fd);
    Connection& c = *it->second;
    stats_.sessions += c.session->finish();
    c.session.reset();
    std::size_t discarded;
    {
      std::lock_guard<std::mutex> lock(c.outMutex);
      discarded = c.outBytes;
      c.outBytes = 0;
      c.outQueue.clear();
    }
    if (discarded > 0) {
      adjustOutstanding(-static_cast<std::ptrdiff_t>(discarded));
    }
    ops_->close(fd);
    ++stats_.closes;
    NANO_OBS_COUNT("net/closes", 1);
    conns_.erase(it);
  }
  if (!done.empty()) {
    connCount_.store(conns_.size(), std::memory_order_release);
    NANO_OBS_GAUGE("net/active_connections",
                   static_cast<double>(conns_.size()));
  }
}

}  // namespace nano::net
