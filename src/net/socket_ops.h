// The narrow syscall surface the socket front end stands on. Everything
// the receive loop does to a socket goes through this interface, so the
// multi-client test suite can swap the kernel out for an in-memory
// loopback double (net/mock_socket.h) and run deterministically with no
// real networking, no ports, and no firewall prompts — the same pattern
// as sACN's sockets/sacn_mock split that the ROADMAP names as exemplar.
//
// All descriptors are non-blocking by construction: read/write report
// would-block instead of stalling, and poll() is the only place the
// receive thread sleeps. wake() interrupts a sleeping poll() from any
// thread (emitters, signal handlers via the POSIX self-pipe).
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

namespace nano::net {

/// One descriptor in a poll() set: `want*` say what the caller waits
/// for, the out flags say what fired.
struct PollItem {
  int fd = -1;
  bool wantRead = false;
  bool wantWrite = false;
  bool readable = false;  ///< out: bytes (or a pending accept) available
  bool writable = false;  ///< out: a write would make progress
  bool broken = false;    ///< out: error/hangup; close the descriptor
};

/// Sentinels for read()/write() results alongside ">= 0 bytes moved".
inline constexpr long kIoWouldBlock = -1;
inline constexpr long kIoError = -2;

class SocketOps {
 public:
  virtual ~SocketOps() = default;

  /// Bind + listen a TCP socket on host:port (port 0 picks an ephemeral
  /// port — read it back with localPort()). Returns the listener fd, or
  /// -1 with `error` filled.
  virtual int listenTcp(const std::string& host, int port,
                        std::string& error) = 0;
  /// Bind + listen a Unix-domain socket at `path` (an existing socket
  /// file is replaced). Returns the listener fd, or -1 with `error`.
  virtual int listenUnix(const std::string& path, std::string& error) = 0;
  /// The port a TCP listener actually bound (-1 if not a TCP listener).
  virtual int localPort(int listenFd) = 0;

  /// Accept one pending connection; -1 when none are pending.
  virtual int accept(int listenFd) = 0;
  /// Bytes read (> 0), 0 at EOF, kIoWouldBlock, or kIoError.
  virtual long read(int fd, char* buf, std::size_t n) = 0;
  /// Bytes written (>= 0, possibly short), kIoWouldBlock, or kIoError.
  virtual long write(int fd, const char* buf, std::size_t n) = 0;
  virtual void close(int fd) = 0;

  /// Wait until an item is ready, wake() is called, or `timeoutMs`
  /// elapses (-1 = no timeout). Fills the out flags; returns the number
  /// of ready items (0 on timeout or wake).
  virtual int poll(std::vector<PollItem>& items, int timeoutMs) = 0;
  /// Interrupt a sleeping poll() from another thread. With the POSIX
  /// implementation this is a single write() to a self-pipe, so it is
  /// safe to call from a signal handler.
  virtual void wake() = 0;
};

/// The real thing: POSIX sockets, one self-pipe for wake(). Each server
/// owns its own instance (the self-pipe is per-instance state).
std::unique_ptr<SocketOps> makePosixSocketOps();

}  // namespace nano::net
