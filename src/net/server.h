// Multi-client socket front end for the evaluation service: one
// event-driven receive thread accepts TCP and/or Unix-domain connections,
// frames each into newline-delimited requests, and feeds every connection
// through its own svc::Session — the exact pipeline the stdin server
// runs, so a trace replayed over a socket is byte-identical to the same
// trace piped through stdin, at any NANO_EXEC_THREADS.
//
// Memory is bounded per connection at every stage:
//   - unframed input:   reads stop past maxLineBytes (oversize close)
//   - framed-not-admitted lines + in-flight responses: the receive loop
//     pauses POLLIN once the session's emit queue is full, so TCP flow
//     control pushes back on the client (net/read_pauses)
//   - serialized-but-unsent responses: a client that stops reading past
//     maxWriteBufferBytes is disconnected (net/slow_client_closes)
// and process-wide by the admission limit: past maxClients, a new
// connection gets one structured {"status":"shed",...} line — the same
// shape the scheduler's queue-full path emits — and is closed.
//
// All socket I/O goes through SocketOps, so the whole server runs against
// the in-memory mock (net/mock_socket.h) in tests.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/socket_ops.h"
#include "svc/server.h"

namespace nano::net {

struct NetServerOptions {
  /// TCP listener; port -1 disables, 0 binds an ephemeral port (read it
  /// back with NetServer::tcpPort() after start()).
  std::string tcpHost = "127.0.0.1";
  int tcpPort = -1;
  /// Unix-domain listener path; empty disables. A stale socket file at
  /// the path is replaced.
  std::string unixPath;

  /// Admission limit: connections past this get one structured shed line
  /// and are closed (net/shed_connections).
  std::size_t maxClients = 64;
  /// Close a connection with no traffic and nothing in flight for this
  /// long (0 disables). The close is graceful: anything already admitted
  /// still gets its response.
  int idleTimeoutMs = 0;
  /// Disconnect a client whose unread responses exceed this many bytes —
  /// the emit-queue pause bounds response *count*; this bounds the
  /// serialized bytes a non-reading client can pin.
  std::size_t maxWriteBufferBytes = 4u << 20;
  /// A single request line larger than this closes the connection
  /// (net/oversize_closes) — it could never parse anyway.
  std::size_t maxLineBytes = 1u << 20;

  /// Per-connection pipeline knobs (slow log, emitQueueLimit). The emit
  /// queue limit doubles as the per-connection write-queue bound that
  /// triggers read pauses.
  svc::ServerOptions session;
};

/// Receive-thread tallies; read them after stop().
struct NetServerStats {
  std::size_t accepted = 0;
  std::size_t shedConnections = 0;
  std::size_t idleCloses = 0;
  std::size_t slowClientCloses = 0;
  std::size_t oversizeCloses = 0;
  std::size_t closes = 0;          ///< connections fully closed (any reason)
  svc::ServerStats sessions;       ///< aggregate of every connection's tally
};

class NetServer {
 public:
  /// `ops` defaults to the real POSIX implementation; tests pass a
  /// MockSocketOps they also drive the client side of.
  NetServer(svc::Service& service, NetServerOptions options,
            std::unique_ptr<SocketOps> ops = nullptr);
  /// stop() if the caller has not.
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Bind the configured listeners and start the receive thread. False
  /// (with `error` filled) if nothing could listen; no thread runs then.
  bool start(std::string& error);

  /// The TCP port actually bound (after start(); -1 if TCP is disabled).
  [[nodiscard]] int tcpPort() const { return boundTcpPort_; }

  /// Begin graceful shutdown without blocking: stop accepting, EOF every
  /// connection, drain in-flight work, flush, close. Async-signal-safe
  /// (an atomic store plus SocketOps::wake()), so signal handlers may
  /// call it directly.
  void requestStop();

  /// Block until the receive loop exits — i.e. until requestStop() is
  /// called (possibly from a signal handler) and the drain completes —
  /// then drain the service. Idempotent and thread-safe; stats() is
  /// stable once this returns.
  void wait();

  /// requestStop() + wait().
  void stop();

  /// Live connection count (any thread; tests poll this).
  [[nodiscard]] std::size_t activeConnections() const {
    return connCount_.load(std::memory_order_acquire);
  }

  /// Valid after stop().
  [[nodiscard]] const NetServerStats& stats() const { return stats_; }

 private:
  /// Receive-thread state for one client. The emitter thread only touches
  /// outQueue/outBytes (under outMutex); everything else is the receive
  /// thread's alone. The Session is destroyed before the Connection, so
  /// the sink's raw back-pointer never dangles.
  struct Connection {
    int fd = -1;
    std::unique_ptr<svc::Session> session;
    std::string readBuf;                   ///< unframed input bytes
    std::deque<std::string> pendingLines;  ///< framed, awaiting admission
    bool inputEof = false;      ///< no more reads (EOF, idle, or drain)
    bool inputClosed = false;   ///< session->closeInput() issued
    bool doomed = false;        ///< discard output, reap once drained
    bool readPaused = false;    ///< currently backpressured (for the tally)
    std::int64_t lastActivityNs = 0;

    std::mutex outMutex;
    std::deque<std::string> outQueue;  ///< emitter pushes, receiver drains
    std::size_t outBytes = 0;          ///< queued + unwritten head bytes
    std::string writeHead;             ///< receive thread only
    std::size_t writeOff = 0;
  };

  void receiveLoop();
  void beginDrain();
  void acceptPending(int listenFd);
  void shedConnection(int fd);
  void readInto(Connection& c);
  void pumpLines(Connection& c);
  void flushWrites(Connection& c);
  void doomConnection(Connection& c);
  void reapFinished();
  void closeIdle();
  [[nodiscard]] bool wantsRead(Connection& c) const;
  [[nodiscard]] bool hasOutbound(Connection& c);
  void enqueueOutput(Connection& c, std::string&& line);
  void adjustOutstanding(std::ptrdiff_t delta);

  svc::Service& service_;
  NetServerOptions options_;
  std::unique_ptr<SocketOps> ops_;
  std::vector<int> listenFds_;
  int boundTcpPort_ = -1;
  std::map<int, std::unique_ptr<Connection>> conns_;  ///< receive thread only
  std::atomic<std::size_t> connCount_{0};
  std::atomic<std::ptrdiff_t> outstandingBytes_{0};  ///< across connections
  std::atomic<std::ptrdiff_t> peakOutstanding_{0};
  std::atomic<bool> stopRequested_{false};
  bool draining_ = false;   ///< receive thread only
  NetServerStats stats_;    ///< receive thread only, until stop()
  std::once_flag stopOnce_;
  bool started_ = false;
  std::thread receiver_;
};

}  // namespace nano::net
