#include "net/mock_socket.h"

#include <algorithm>
#include <chrono>

namespace nano::net {

// ---------------------------------------------------------- server side

int MockSocketOps::listenTcp(const std::string& host, int port,
                             std::string& error) {
  (void)host;  // the mock has one address family: "here"
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [fd, l] : listeners_) {
    if (l.tcp && l.port == port && port != 0) {
      error = "mock port already in use";
      return -1;
    }
  }
  Listener listener;
  listener.tcp = true;
  listener.port = port == 0 ? nextPort_++ : port;
  const int fd = nextFd_++;
  listeners_.emplace(fd, std::move(listener));
  return fd;
}

int MockSocketOps::listenUnix(const std::string& path, std::string& error) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [fd, l] : listeners_) {
    if (!l.tcp && l.path == path) {
      error = "mock unix path already in use: " + path;
      return -1;
    }
  }
  Listener listener;
  listener.path = path;
  const int fd = nextFd_++;
  listeners_.emplace(fd, std::move(listener));
  return fd;
}

int MockSocketOps::localPort(int listenFd) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = listeners_.find(listenFd);
  return it != listeners_.end() && it->second.tcp ? it->second.port : -1;
}

int MockSocketOps::accept(int listenFd) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = listeners_.find(listenFd);
  if (it == listeners_.end() || it->second.pendingServerFds.empty()) return -1;
  const int fd = it->second.pendingServerFds.front();
  it->second.pendingServerFds.pop_front();
  return fd;
}

long MockSocketOps::read(int fd, char* buf, std::size_t n) {
  std::lock_guard<std::mutex> lock(mutex_);
  const ConnPtr conn = serverConnLocked(fd);
  if (!conn) return kIoError;
  if (conn->toServer.buf.empty()) {
    if (conn->toServer.writerClosed || conn->clientClosed) return 0;  // EOF
    return kIoWouldBlock;
  }
  const std::size_t take = std::min(n, conn->toServer.buf.size());
  std::copy_n(conn->toServer.buf.data(), take, buf);
  conn->toServer.buf.erase(0, take);
  return static_cast<long>(take);
}

long MockSocketOps::write(int fd, const char* buf, std::size_t n) {
  std::unique_lock<std::mutex> lock(mutex_);
  const ConnPtr conn = serverConnLocked(fd);
  if (!conn) return kIoError;
  if (conn->clientClosed) return kIoError;  // like EPIPE
  std::size_t space = n;
  if (conn->toClientCap != 0) {
    space = conn->toClientCap > conn->toClient.buf.size()
                ? conn->toClientCap - conn->toClient.buf.size()
                : 0;
    if (space == 0) return kIoWouldBlock;
  }
  const std::size_t put = std::min(n, space);
  conn->toClient.buf.append(buf, put);
  lock.unlock();
  cv_.notify_all();
  return static_cast<long>(put);
}

void MockSocketOps::close(int fd) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (listeners_.erase(fd) > 0) return;
    const auto it = byFd_.find(fd);
    if (it == byFd_.end()) return;
    const ConnPtr conn = it->second;
    if (fd == conn->serverFd) {
      conn->serverClosed = true;
      conn->toClient.writerClosed = true;
    } else {
      conn->clientClosed = true;
      conn->toServer.writerClosed = true;
    }
    byFd_.erase(it);
  }
  cv_.notify_all();
}

int MockSocketOps::poll(std::vector<PollItem>& items, int timeoutMs) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto fill = [&]() -> int {
    int ready = 0;
    for (PollItem& item : items) {
      item.readable = item.writable = item.broken = false;
      const auto lit = listeners_.find(item.fd);
      if (lit != listeners_.end()) {
        item.readable = item.wantRead && !lit->second.pendingServerFds.empty();
      } else {
        const ConnPtr conn = serverConnLocked(item.fd);
        if (!conn) {
          item.broken = true;
        } else {
          item.readable = item.wantRead && serverReadableLocked(*conn);
          item.writable = item.wantWrite && serverWritableLocked(*conn);
        }
      }
      if (item.readable || item.writable || item.broken) ++ready;
    }
    return ready;
  };

  const auto woken = [&] { return wakePending_ || fill() > 0; };
  if (timeoutMs < 0) {
    cv_.wait(lock, woken);
  } else {
    cv_.wait_for(lock, std::chrono::milliseconds(timeoutMs), woken);
  }
  wakePending_ = false;
  return fill();
}

void MockSocketOps::wake() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    wakePending_ = true;
  }
  cv_.notify_all();
}

// ---------------------------------------------------------- client side

int MockSocketOps::connectLocked(Listener& listener) {
  auto conn = std::make_shared<Conn>();
  conn->serverFd = nextFd_++;
  conn->clientFd = nextFd_++;
  conn->toClientCap = clientRecvCapacity_;
  byFd_.emplace(conn->serverFd, conn);
  byFd_.emplace(conn->clientFd, conn);
  listener.pendingServerFds.push_back(conn->serverFd);
  return conn->clientFd;
}

int MockSocketOps::connectTcp(int port) {
  int fd = -1;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [lfd, listener] : listeners_) {
      if (listener.tcp && listener.port == port) {
        fd = connectLocked(listener);
        break;
      }
    }
  }
  if (fd >= 0) cv_.notify_all();
  return fd;
}

int MockSocketOps::connectUnix(const std::string& path) {
  int fd = -1;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [lfd, listener] : listeners_) {
      if (!listener.tcp && listener.path == path) {
        fd = connectLocked(listener);
        break;
      }
    }
  }
  if (fd >= 0) cv_.notify_all();
  return fd;
}

void MockSocketOps::clientSend(int clientFd, std::string_view bytes) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const ConnPtr conn = clientConnLocked(clientFd);
    if (!conn || conn->toServer.writerClosed) return;
    conn->toServer.buf.append(bytes.data(), bytes.size());
  }
  cv_.notify_all();
}

void MockSocketOps::clientCloseWrite(int clientFd) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const ConnPtr conn = clientConnLocked(clientFd);
    if (!conn) return;
    conn->toServer.writerClosed = true;
  }
  cv_.notify_all();
}

void MockSocketOps::clientClose(int clientFd) { close(clientFd); }

bool MockSocketOps::clientRead(int clientFd, std::string& out, int timeoutMs) {
  std::unique_lock<std::mutex> lock(mutex_);
  const ConnPtr conn = clientConnLocked(clientFd);
  if (!conn) return false;
  const auto haveData = [&] {
    return !conn->toClient.buf.empty() || conn->toClient.writerClosed;
  };
  if (!cv_.wait_for(lock, std::chrono::milliseconds(timeoutMs), haveData)) {
    return false;
  }
  if (conn->toClient.buf.empty()) return false;  // EOF
  out.append(conn->toClient.buf);
  conn->toClient.buf.clear();
  cv_.notify_all();
  return true;
}

std::string MockSocketOps::clientReadAll(int clientFd, int timeoutMs) {
  std::string all;
  std::unique_lock<std::mutex> lock(mutex_);
  const ConnPtr conn = clientConnLocked(clientFd);
  if (!conn) return all;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeoutMs);
  while (true) {
    all.append(conn->toClient.buf);
    conn->toClient.buf.clear();
    if (conn->toClient.writerClosed) break;
    if (cv_.wait_until(lock, deadline, [&] {
          return !conn->toClient.buf.empty() || conn->toClient.writerClosed;
        })) {
      continue;
    }
    break;  // timed out waiting for more
  }
  all.append(conn->toClient.buf);
  conn->toClient.buf.clear();
  cv_.notify_all();
  return all;
}

bool MockSocketOps::serverClosed(int clientFd) {
  std::lock_guard<std::mutex> lock(mutex_);
  const ConnPtr conn = clientConnLocked(clientFd);
  return conn == nullptr || conn->serverClosed;
}

void MockSocketOps::setClientRecvCapacity(std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  clientRecvCapacity_ = bytes;
}

// --------------------------------------------------------------- lookup

MockSocketOps::ConnPtr MockSocketOps::serverConnLocked(int fd) const {
  const auto it = byFd_.find(fd);
  return it != byFd_.end() && it->second->serverFd == fd ? it->second
                                                         : nullptr;
}

MockSocketOps::ConnPtr MockSocketOps::clientConnLocked(int fd) const {
  const auto it = byFd_.find(fd);
  return it != byFd_.end() && it->second->clientFd == fd ? it->second
                                                         : nullptr;
}

bool MockSocketOps::serverReadableLocked(const Conn& c) const {
  return !c.toServer.buf.empty() || c.toServer.writerClosed || c.clientClosed;
}

bool MockSocketOps::serverWritableLocked(const Conn& c) const {
  if (c.clientClosed) return true;  // a write would fail fast, like POLLOUT+EPIPE
  if (c.toClientCap == 0) return true;
  return c.toClient.buf.size() < c.toClientCap;
}

}  // namespace nano::net
