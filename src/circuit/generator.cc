#include "circuit/generator.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace nano::circuit {

namespace {

CellFunction pickFunction(util::Rng& rng) {
  const double r = rng.uniform();
  if (r < 0.22) return CellFunction::Inv;
  if (r < 0.55) return CellFunction::Nand2;
  if (r < 0.75) return CellFunction::Nor2;
  if (r < 0.85) return CellFunction::Nand3;
  if (r < 0.93) return CellFunction::Nor3;
  return CellFunction::Xor2;
}

}  // namespace

GeneratorConfig scaledConfig(int gates) {
  if (gates < 64) throw std::invalid_argument("scaledConfig: gates < 64");
  GeneratorConfig c;
  c.gates = gates;
  const int root = static_cast<int>(std::sqrt(static_cast<double>(gates)));
  c.inputs = std::max(16, root / 2);
  c.outputs = std::max(16, root / 2);
  int log2 = 0;
  for (int g = gates; g > 1; g >>= 1) ++log2;
  c.depth = std::max(8, 2 * log2 - 2);  // ~18 at 2k gates, ~38 at 1M
  return c;
}

Netlist randomLogic(const Library& library, const GeneratorConfig& config,
                    util::Rng& rng) {
  if (config.inputs < 1 || config.gates < config.depth || config.depth < 1) {
    throw std::invalid_argument("randomLogic: bad config");
  }
  const auto& node = library.characterizer().node();
  Netlist nl(defaultWireCapPerFanout(node),
             4.0 * library.smallestInverterInputCap());
  nl.reserve(config.inputs + config.gates);

  std::vector<std::vector<int>> byLevel(static_cast<std::size_t>(config.depth) + 1);
  for (int i = 0; i < config.inputs; ++i) byLevel[0].push_back(nl.addInput());

  // Level assignment: one gate per level first (so the target depth is
  // realized), the rest drawn with a shallow-biased distribution.
  std::vector<int> levelOf(static_cast<std::size_t>(config.gates));
  for (int g = 0; g < config.gates; ++g) {
    if (g < config.depth) {
      levelOf[static_cast<std::size_t>(g)] = g + 1;
    } else {
      // Inverse-CDF draw from weight(l) ~ (1 - (l-1)/depth)^(bias-1).
      const double u = rng.uniform();
      const double x = 1.0 - std::pow(1.0 - u, 1.0 / config.shallowBias);
      int level = 1 + static_cast<int>(x * config.depth);
      levelOf[static_cast<std::size_t>(g)] = std::clamp(level, 1, config.depth);
    }
  }
  std::sort(levelOf.begin(), levelOf.end());

  // Prefer nodes that nothing consumes yet, so little logic dangles and
  // the fanout distribution stays realistic.
  auto pickFrom = [&](const std::vector<int>& pool) {
    int choice = pool[static_cast<std::size_t>(
        rng.uniformInt(0, static_cast<int>(pool.size()) - 1))];
    for (int attempt = 0; attempt < 3 && !nl.node(choice).fanouts.empty();
         ++attempt) {
      choice = pool[static_cast<std::size_t>(
          rng.uniformInt(0, static_cast<int>(pool.size()) - 1))];
    }
    return choice;
  };

  for (int g = 0; g < config.gates; ++g) {
    const int level = levelOf[static_cast<std::size_t>(g)];
    const CellFunction fn = pickFunction(rng);
    const Cell& cell = library.pick(fn, 1.0);
    std::vector<int> fanins;
    // First fanin from the previous level to realize the depth; remaining
    // fanins from any shallower level.
    fanins.push_back(pickFrom(byLevel[static_cast<std::size_t>(level - 1)]));
    for (int k = 1; k < faninOf(fn); ++k) {
      const int srcLevel = rng.uniformInt(0, level - 1);
      fanins.push_back(pickFrom(byLevel[static_cast<std::size_t>(srcLevel)]));
    }
    const int id = nl.addGate(cell, std::move(fanins));
    byLevel[static_cast<std::size_t>(level)].push_back(id);
  }

  // Outputs: a share tapped anywhere (short, slack-rich paths), the rest
  // from the deepest levels (critical endpoints). Dangling gates become
  // outputs too so no logic is dead.
  const auto gates = nl.gateIds();
  const int early = static_cast<int>(config.earlyOutputFraction * config.outputs);
  for (int i = 0; i < early; ++i) {
    nl.markOutput(gates[static_cast<std::size_t>(
        rng.uniformInt(0, static_cast<int>(gates.size()) - 1))]);
  }
  for (int level = config.depth; level >= 1; --level) {
    const auto& pool = byLevel[static_cast<std::size_t>(level)];
    for (int id : pool) {
      if (static_cast<int>(nl.outputs().size()) >= config.outputs) break;
      nl.markOutput(id);
    }
    if (static_cast<int>(nl.outputs().size()) >= config.outputs) break;
  }
  for (int id : gates) {
    if (nl.node(id).fanouts.empty()) nl.markOutput(id);
  }
  nl.validate();
  return nl;
}

Netlist pipelinedLogic(const Library& library, const GeneratorConfig& config,
                       util::Rng& rng, int blocks) {
  if (blocks < 1) throw std::invalid_argument("pipelinedLogic: blocks < 1");
  const auto& node = library.characterizer().node();
  Netlist out(defaultWireCapPerFanout(node),
              4.0 * library.smallestInverterInputCap());
  out.reserve(config.inputs + config.gates);

  const int minDepth = std::max(2, config.depth / 4);
  for (int b = 0; b < blocks; ++b) {
    GeneratorConfig sub = config;
    sub.depth = blocks == 1
                    ? config.depth
                    : minDepth + (config.depth - minDepth) * b / (blocks - 1);
    sub.gates = std::max(sub.depth + 4, config.gates / blocks);
    sub.inputs = std::max(4, config.inputs / blocks);
    sub.outputs = std::max(2, config.outputs / blocks);
    const Netlist block = randomLogic(library, sub, rng);

    // Splice the block into the union netlist.
    std::vector<int> map(static_cast<std::size_t>(block.nodeCount()), -1);
    for (int i = 0; i < block.nodeCount(); ++i) {
      const auto& n = block.node(i);
      if (n.kind == Netlist::NodeKind::PrimaryInput) {
        map[static_cast<std::size_t>(i)] = out.addInput();
      } else {
        std::vector<int> fanins;
        fanins.reserve(n.fanins.size());
        for (int f : n.fanins) {
          fanins.push_back(map[static_cast<std::size_t>(f)]);
        }
        map[static_cast<std::size_t>(i)] = out.addGate(n.cell, std::move(fanins));
      }
    }
    for (int o : block.outputs()) {
      out.markOutput(map[static_cast<std::size_t>(o)]);
    }
  }
  out.validate();
  return out;
}

Netlist rippleCarryAdder(const Library& library, int bits) {
  if (bits < 1) throw std::invalid_argument("rippleCarryAdder: bits < 1");
  const auto& node = library.characterizer().node();
  Netlist nl(defaultWireCapPerFanout(node),
             4.0 * library.smallestInverterInputCap());
  const Cell& nand = library.pick(CellFunction::Nand2, 1.0);

  std::vector<int> a(static_cast<std::size_t>(bits));
  std::vector<int> b(static_cast<std::size_t>(bits));
  for (int i = 0; i < bits; ++i) a[static_cast<std::size_t>(i)] = nl.addInput();
  for (int i = 0; i < bits; ++i) b[static_cast<std::size_t>(i)] = nl.addInput();
  int carry = nl.addInput();

  for (int i = 0; i < bits; ++i) {
    // Classic 9-NAND2 full adder.
    const int ai = a[static_cast<std::size_t>(i)];
    const int bi = b[static_cast<std::size_t>(i)];
    const int n1 = nl.addGate(nand, {ai, bi});
    const int n2 = nl.addGate(nand, {ai, n1});
    const int n3 = nl.addGate(nand, {bi, n1});
    const int n4 = nl.addGate(nand, {n2, n3});  // a xor b
    const int n5 = nl.addGate(nand, {n4, carry});
    const int n6 = nl.addGate(nand, {n4, n5});
    const int n7 = nl.addGate(nand, {carry, n5});
    const int sum = nl.addGate(nand, {n6, n7});
    const int cout = nl.addGate(nand, {n5, n1});
    nl.markOutput(sum);
    carry = cout;
  }
  nl.markOutput(carry);
  nl.validate();
  return nl;
}

Netlist koggeStoneAdder(const Library& library, int bits) {
  if (bits < 1) throw std::invalid_argument("koggeStoneAdder: bits < 1");
  const auto& node = library.characterizer().node();
  Netlist nl(defaultWireCapPerFanout(node),
             4.0 * library.smallestInverterInputCap());
  const Cell& nand = library.pick(CellFunction::Nand2, 1.0);
  const Cell& inv = library.pick(CellFunction::Inv, 1.0);
  const Cell& xorc = library.pick(CellFunction::Xor2, 1.0);

  auto andGate = [&](int x, int y) {
    return nl.addGate(inv, {nl.addGate(nand, {x, y})});
  };
  // x OR y = NAND(INV(x), INV(y)).
  auto orGate = [&](int x, int y) {
    return nl.addGate(nand, {nl.addGate(inv, {x}), nl.addGate(inv, {y})});
  };

  std::vector<int> a(static_cast<std::size_t>(bits));
  std::vector<int> b(static_cast<std::size_t>(bits));
  for (int i = 0; i < bits; ++i) a[static_cast<std::size_t>(i)] = nl.addInput();
  for (int i = 0; i < bits; ++i) b[static_cast<std::size_t>(i)] = nl.addInput();
  const int cin = nl.addInput();

  // Bit-level propagate/generate. The carry-in acts as g[-1]: fold it in
  // by treating position 0 specially below.
  std::vector<int> p(static_cast<std::size_t>(bits));
  std::vector<int> g(static_cast<std::size_t>(bits));
  for (int i = 0; i < bits; ++i) {
    p[static_cast<std::size_t>(i)] =
        nl.addGate(xorc, {a[static_cast<std::size_t>(i)],
                          b[static_cast<std::size_t>(i)]});
    g[static_cast<std::size_t>(i)] = andGate(a[static_cast<std::size_t>(i)],
                                             b[static_cast<std::size_t>(i)]);
  }
  // Fold cin: g0' = g0 OR (p0 AND cin).
  std::vector<int> gPrefix = g;
  std::vector<int> pPrefix = p;
  gPrefix[0] = orGate(g[0], andGate(p[0], cin));

  // Kogge-Stone prefix tree: at distance d, combine (G,P)[i] with
  // (G,P)[i-d]: G' = G OR (P AND Glo); P' = P AND Plo.
  for (int d = 1; d < bits; d *= 2) {
    std::vector<int> gNext = gPrefix;
    std::vector<int> pNext = pPrefix;
    for (int i = d; i < bits; ++i) {
      const int lo = i - d;
      gNext[static_cast<std::size_t>(i)] =
          orGate(gPrefix[static_cast<std::size_t>(i)],
                 andGate(pPrefix[static_cast<std::size_t>(i)],
                         gPrefix[static_cast<std::size_t>(lo)]));
      pNext[static_cast<std::size_t>(i)] =
          andGate(pPrefix[static_cast<std::size_t>(i)],
                  pPrefix[static_cast<std::size_t>(lo)]);
    }
    gPrefix = std::move(gNext);
    pPrefix = std::move(pNext);
  }

  // Sum_i = p_i XOR carry_{i-1}; carry_{i-1} = gPrefix[i-1] (cin folded).
  for (int i = 0; i < bits; ++i) {
    const int carryIn =
        i == 0 ? cin : gPrefix[static_cast<std::size_t>(i - 1)];
    nl.markOutput(nl.addGate(xorc, {p[static_cast<std::size_t>(i)], carryIn}));
  }
  nl.markOutput(gPrefix[static_cast<std::size_t>(bits - 1)]);  // carry out
  nl.validate();
  return nl;
}

Netlist arrayMultiplier(const Library& library, int bits) {
  if (bits < 2) throw std::invalid_argument("arrayMultiplier: bits < 2");
  const auto& node = library.characterizer().node();
  Netlist nl(defaultWireCapPerFanout(node),
             4.0 * library.smallestInverterInputCap());
  const Cell& nand = library.pick(CellFunction::Nand2, 1.0);
  const Cell& inv = library.pick(CellFunction::Inv, 1.0);

  std::vector<int> a(static_cast<std::size_t>(bits));
  std::vector<int> b(static_cast<std::size_t>(bits));
  for (int i = 0; i < bits; ++i) a[static_cast<std::size_t>(i)] = nl.addInput();
  for (int i = 0; i < bits; ++i) b[static_cast<std::size_t>(i)] = nl.addInput();

  auto andGate = [&](int x, int y) {
    return nl.addGate(inv, {nl.addGate(nand, {x, y})});
  };
  // 9-NAND full adder (same decomposition as rippleCarryAdder).
  auto fullAdder = [&](int x, int y, int cin) {
    const int n1 = nl.addGate(nand, {x, y});
    const int n2 = nl.addGate(nand, {x, n1});
    const int n3 = nl.addGate(nand, {y, n1});
    const int n4 = nl.addGate(nand, {n2, n3});
    const int n5 = nl.addGate(nand, {n4, cin});
    const int n6 = nl.addGate(nand, {n4, n5});
    const int n7 = nl.addGate(nand, {cin, n5});
    const int sum = nl.addGate(nand, {n6, n7});
    const int cout = nl.addGate(nand, {n5, n1});
    return std::pair<int, int>{sum, cout};
  };
  // Half adder: sum = XOR via 4 NAND, carry = AND.
  auto halfAdder = [&](int x, int y) {
    const int n1 = nl.addGate(nand, {x, y});
    const int n2 = nl.addGate(nand, {x, n1});
    const int n3 = nl.addGate(nand, {y, n1});
    const int sum = nl.addGate(nand, {n2, n3});
    const int carry = nl.addGate(inv, {n1});
    return std::pair<int, int>{sum, carry};
  };

  // Row 0: partial products a_i * b_0. Bit 0 is product bit 0; the rest
  // seed the running accumulator `acc`, where acc[i] holds weight j+i at
  // the start of row j.
  {
    std::vector<int> pp0(static_cast<std::size_t>(bits));
    for (int i = 0; i < bits; ++i) {
      pp0[static_cast<std::size_t>(i)] =
          andGate(a[static_cast<std::size_t>(i)], b[0]);
    }
    nl.markOutput(pp0[0]);
    std::vector<int> acc(pp0.begin() + 1, pp0.end());

    for (int j = 1; j < bits; ++j) {
      std::vector<int> pp(static_cast<std::size_t>(bits));
      for (int i = 0; i < bits; ++i) {
        pp[static_cast<std::size_t>(i)] = andGate(
            a[static_cast<std::size_t>(i)], b[static_cast<std::size_t>(j)]);
      }
      // Ripple row: sum pp[i] + acc[i] + carry at weight j+i.
      std::vector<int> sums(static_cast<std::size_t>(bits));
      int carry = -1;
      for (int i = 0; i < bits; ++i) {
        const int x = pp[static_cast<std::size_t>(i)];
        const int y =
            i < static_cast<int>(acc.size()) ? acc[static_cast<std::size_t>(i)]
                                             : -1;
        if (y < 0 && carry < 0) {
          sums[static_cast<std::size_t>(i)] = x;
        } else if (y < 0 || carry < 0) {
          const auto [s, c] = halfAdder(x, y < 0 ? carry : y);
          sums[static_cast<std::size_t>(i)] = s;
          carry = c;
        } else {
          const auto [s, c] = fullAdder(x, y, carry);
          sums[static_cast<std::size_t>(i)] = s;
          carry = c;
        }
      }
      nl.markOutput(sums[0]);  // product bit j
      acc.assign(sums.begin() + 1, sums.end());
      if (carry >= 0) acc.push_back(carry);  // weight j+bits
      if (j == bits - 1) {
        for (int id : acc) nl.markOutput(id);  // product bits j+1..2N-1
      }
    }
  }
  nl.validate();
  return nl;
}

Netlist inverterChain(const Library& library, int length, double drive) {
  if (length < 1) throw std::invalid_argument("inverterChain: length < 1");
  const auto& node = library.characterizer().node();
  Netlist nl(defaultWireCapPerFanout(node),
             4.0 * library.smallestInverterInputCap());
  const Cell& inv = library.pick(CellFunction::Inv, drive);
  int prev = nl.addInput();
  for (int i = 0; i < length; ++i) prev = nl.addGate(inv, {prev});
  nl.markOutput(prev);
  nl.validate();
  return nl;
}

Netlist bufferTree(const Library& library, int leaves, int branching) {
  if (leaves < 1 || branching < 2) {
    throw std::invalid_argument("bufferTree: bad shape");
  }
  const auto& node = library.characterizer().node();
  Netlist nl(defaultWireCapPerFanout(node),
             4.0 * library.smallestInverterInputCap());
  const Cell& buf = library.pick(CellFunction::Buf, 2.0);
  std::vector<int> frontier = {nl.addInput()};
  while (static_cast<int>(frontier.size()) < leaves) {
    std::vector<int> next;
    for (int id : frontier) {
      for (int k = 0; k < branching &&
                      static_cast<int>(next.size() + frontier.size()) <= leaves * branching;
           ++k) {
        next.push_back(nl.addGate(buf, {id}));
      }
    }
    frontier = std::move(next);
  }
  frontier.resize(static_cast<std::size_t>(leaves));
  for (int id : frontier) nl.markOutput(id);
  nl.validate();
  return nl;
}

}  // namespace nano::circuit
