#include "circuit/netlist.h"

#include <stdexcept>
#include <string>

namespace nano::circuit {

Netlist::Netlist(double wireCapPerFanout, double outputLoadCap)
    : wireCapPerFanout_(wireCapPerFanout), outputLoadCap_(outputLoadCap) {
  if (wireCapPerFanout < 0 || outputLoadCap < 0) {
    throw std::invalid_argument("Netlist: negative load parameter");
  }
}

void Netlist::reserve(int nodes) {
  if (nodes <= 0) return;
  nodes_.reserve(static_cast<std::size_t>(nodes));
  loadCap_.reserve(static_cast<std::size_t>(nodes));
}

int Netlist::addInput() {
  Node n;
  n.kind = NodeKind::PrimaryInput;
  nodes_.push_back(std::move(n));
  loadCap_.push_back(0.0);  // no fanouts yet
  ++inputCount_;
  return nodeCount() - 1;
}

int Netlist::addGate(Cell cell, std::vector<int> fanins) {
  if (static_cast<int>(fanins.size()) != cell.fanin()) {
    throw std::invalid_argument("addGate: fanin count mismatch for " + cell.name);
  }
  const int id = nodeCount();
  for (int f : fanins) {
    if (f < 0 || f >= id) throw std::invalid_argument("addGate: bad fanin id");
  }
  Node n;
  n.kind = NodeKind::Gate;
  n.cell = std::move(cell);
  n.fanins = std::move(fanins);
  nodes_.push_back(std::move(n));
  loadCap_.push_back(0.0);  // no fanouts yet
  for (int f : nodes_.back().fanins) {
    nodes_[static_cast<std::size_t>(f)].fanouts.push_back(id);
    refreshLoadCap(f);  // this gate's input cap now loads each fanin
  }
  ++gateCount_;
  return id;
}

void Netlist::markOutput(int id) {
  Node& n = nodes_.at(static_cast<std::size_t>(id));
  if (!n.isOutput) {
    n.isOutput = true;
    outputs_.push_back(id);
    refreshLoadCap(id);  // external load now applies
  }
}

void Netlist::replaceCell(int id, Cell cell) {
  Node& n = nodes_.at(static_cast<std::size_t>(id));
  if (n.kind != NodeKind::Gate) {
    throw std::invalid_argument("replaceCell: not a gate");
  }
  if (cell.function != n.cell.function) {
    throw std::invalid_argument("replaceCell: function change not allowed");
  }
  n.cell = std::move(cell);
  // The swapped cell's input cap loads every fanin net; its own load is a
  // function of its fanouts only and stays valid.
  for (int f : n.fanins) refreshLoadCap(f);
}

void Netlist::refreshLoadCap(int id) {
  const Node& n = node(id);
  double cap = 0.0;
  for (int fo : n.fanouts) {
    cap += node(fo).cell.inputCap;
  }
  cap += wireCapPerFanout_ * static_cast<double>(n.fanouts.size());
  if (n.isOutput) cap += outputLoadCap_;
  loadCap_[static_cast<std::size_t>(id)] = cap;
}

double Netlist::totalArea() const {
  double area = 0.0;
  for (const Node& n : nodes_) {
    if (n.kind == NodeKind::Gate) area += n.cell.area;
  }
  return area;
}

std::vector<int> Netlist::gateIds() const {
  std::vector<int> ids;
  ids.reserve(static_cast<std::size_t>(gateCount_));
  for (int i = 0; i < nodeCount(); ++i) {
    if (node(i).kind == NodeKind::Gate) ids.push_back(i);
  }
  return ids;
}

void Netlist::validate() const {
  for (int i = 0; i < nodeCount(); ++i) {
    const Node& n = node(i);
    if (n.kind == NodeKind::Gate) {
      if (static_cast<int>(n.fanins.size()) != n.cell.fanin()) {
        throw std::logic_error("validate: fanin mismatch at node " +
                               std::to_string(i));
      }
      for (int f : n.fanins) {
        if (f < 0 || f >= i) {
          throw std::logic_error("validate: non-topological fanin at node " +
                                 std::to_string(i));
        }
      }
    } else if (!n.fanins.empty()) {
      throw std::logic_error("validate: input with fanins");
    }
  }
  if (outputs_.empty()) throw std::logic_error("validate: no outputs");
}

std::vector<int> Netlist::vddViolations() const {
  std::vector<int> bad;
  for (int i = 0; i < nodeCount(); ++i) {
    const Node& n = node(i);
    if (n.kind != NodeKind::Gate || n.cell.vddDomain != VddDomain::Low) continue;
    if (n.cell.function == CellFunction::LevelConverter) continue;
    for (int fo : n.fanouts) {
      const Node& sink = node(fo);
      const bool sinkIsConverter =
          sink.cell.function == CellFunction::LevelConverter;
      if (sink.cell.vddDomain == VddDomain::High && !sinkIsConverter) {
        bad.push_back(i);
        break;
      }
    }
    // A low-Vdd gate driving a primary output directly also needs
    // conversion at the register boundary; CVS accounts for that in the
    // converter count, so it is not flagged here.
  }
  return bad;
}

double defaultWireCapPerFanout(const tech::TechNode& node) {
  return node.localWireCapPerM * node.avgLocalWireLength * 0.5;
}

}  // namespace nano::circuit
