// Gate-level netlist: a DAG of characterized cells. The substrate under
// STA, activity propagation, power analysis and the multi-Vdd / multi-Vth /
// sizing optimizers.
#pragma once

#include <vector>

#include "circuit/cell.h"

namespace nano::circuit {

/// A combinational gate-level netlist. Nodes are primary inputs or gates;
/// gates reference earlier nodes as fanins, so the node order is
/// topological by construction. Outputs are flagged nodes (registered
/// endpoints with a fixed external load).
class Netlist {
 public:
  enum class NodeKind { PrimaryInput, Gate };

  struct Node {
    NodeKind kind = NodeKind::PrimaryInput;
    Cell cell;                  ///< valid when kind == Gate
    std::vector<int> fanins;    ///< node ids (kind Gate only)
    std::vector<int> fanouts;   ///< gate ids consuming this node
    bool isOutput = false;      ///< drives a primary output / register
  };

  /// `wireCapPerFanout`: net wiring load per fanout pin (from the node's
  /// average local wire); `outputLoadCap`: external load on each primary
  /// output.
  explicit Netlist(double wireCapPerFanout = 0.0, double outputLoadCap = 0.0);

  /// Pre-size the node storage (generators building million-gate netlists
  /// call this to avoid repeated vector regrowth).
  void reserve(int nodes);

  int addInput();
  /// Adds a gate; `fanins` must reference existing nodes and match the
  /// cell's fanin count.
  int addGate(Cell cell, std::vector<int> fanins);
  void markOutput(int id);

  /// Swap the cell of a gate (resizing / recornering). The function and
  /// fanin count must be preserved.
  void replaceCell(int id, Cell cell);

  [[nodiscard]] const Node& node(int id) const { return nodes_.at(static_cast<std::size_t>(id)); }
  [[nodiscard]] int nodeCount() const { return static_cast<int>(nodes_.size()); }
  [[nodiscard]] int gateCount() const { return gateCount_; }
  [[nodiscard]] int inputCount() const { return inputCount_; }
  [[nodiscard]] const std::vector<int>& outputs() const { return outputs_; }
  [[nodiscard]] double wireCapPerFanout() const { return wireCapPerFanout_; }
  [[nodiscard]] double outputLoadCap() const { return outputLoadCap_; }

  /// Capacitive load a node drives: fanout input caps + wire + external.
  /// Served from a per-node cache the mutators (addGate / replaceCell /
  /// markOutput) keep valid, so hot callers (STA, the optimizers) stop
  /// re-summing fanout caps and concurrent readers never race.
  [[nodiscard]] double loadCap(int id) const {
    return loadCap_[static_cast<std::size_t>(id)];
  }

  /// Total cell area of the design, m^2.
  [[nodiscard]] double totalArea() const;

  /// Gate ids in topological (construction) order.
  [[nodiscard]] std::vector<int> gateIds() const;

  /// Structural checks: fanin counts, DAG property, outputs exist. Throws
  /// std::logic_error on violation.
  void validate() const;

  /// Multi-Vdd electrical legality: a low-Vdd gate may only drive low-Vdd
  /// gates or a LevelConverter (paper Section 2.4). Returns offending gate
  /// ids (drivers).
  [[nodiscard]] std::vector<int> vddViolations() const;

 private:
  /// Recompute the cached load of `id` from its fanouts (same summation
  /// order as the uncached historical implementation, so values are
  /// bit-identical).
  void refreshLoadCap(int id);

  std::vector<Node> nodes_;
  std::vector<double> loadCap_;  ///< per-node cache, always valid
  std::vector<int> outputs_;
  double wireCapPerFanout_;
  double outputLoadCap_;
  int gateCount_ = 0;
  int inputCount_ = 0;
};

/// Wire load per fanout derived from a node's average local wire (half the
/// average net length per sink).
double defaultWireCapPerFanout(const tech::TechNode& node);

}  // namespace nano::circuit
