// One-shot levelizer: assigns every node of a fanin graph its topological
// level (primary inputs / sources at level 0; a gate one past its deepest
// fanin) and produces the level-bucketed sweep schedule the flat STA
// engines iterate. Operates on raw CSR adjacency so it can be driven by
// NetlistSoA (always a DAG by construction) and by robustness tests that
// feed it hostile graphs: cycles, self-loops, out-of-range indices and
// disconnected or zero-fanout nodes all come back as structured results —
// no exceptions, no UB.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace nano::circuit {

enum class LevelizeStatus {
  Ok,
  SelfLoop,   ///< a node lists itself as a fanin
  Cycle,      ///< a dependency cycle (no topological order exists)
  BadIndex,   ///< a fanin index out of [0, nodeCount)
  BadShape,   ///< offsets not monotone or sized nodeCount + 1
};

const char* levelizeStatusName(LevelizeStatus status);

/// Result of levelize(). On success: levelOf[i] is node i's level,
/// levelOffsets has levelCount + 1 entries, and order lists node ids
/// bucketed by level (ascending id inside a level), so the nodes of level
/// L are order[levelOffsets[L] .. levelOffsets[L+1]).
struct LevelSchedule {
  LevelizeStatus status = LevelizeStatus::Ok;
  /// First offending node for SelfLoop/Cycle/BadIndex (-1 otherwise).
  std::int64_t offender = -1;
  std::string message;  ///< empty on success
  std::uint32_t levelCount = 0;
  std::vector<std::uint32_t> levelOf;
  std::vector<std::uint32_t> levelOffsets;
  std::vector<std::uint32_t> order;

  [[nodiscard]] bool ok() const { return status == LevelizeStatus::Ok; }
};

/// Levelize `nodeCount` nodes whose fanins are the CSR list
/// fanins[faninOffsets[i] .. faninOffsets[i+1]). Kahn's algorithm over
/// in-degrees: disconnected nodes and zero-fanout sinks are ordinary
/// nodes; cycles are detected as the set of nodes never released (the
/// reported offender is the smallest such id). Never throws on bad input.
LevelSchedule levelize(std::uint32_t nodeCount,
                       std::span<const std::uint32_t> faninOffsets,
                       std::span<const std::uint32_t> fanins);

}  // namespace nano::circuit
