#include "circuit/netlist_soa.h"

#include <limits>
#include <stdexcept>
#include <string>

#include "obs/obs.h"

namespace nano::circuit {

NetlistSoA::NetlistSoA(const Netlist& netlist, BuildOptions options) {
  rebuild(netlist, options);
}

void NetlistSoA::rebuild(const Netlist& netlist, BuildOptions options) {
  const int n = netlist.nodeCount();
  if (n < 0 ||
      static_cast<std::uint64_t>(n) >=
          std::numeric_limits<std::uint32_t>::max()) {
    throw std::invalid_argument("NetlistSoA: node count out of 32-bit range");
  }
  arena_.reset();
  nodeCount_ = static_cast<std::uint32_t>(n);
  gateCount_ = static_cast<std::uint32_t>(netlist.gateCount());
  inputCount_ = static_cast<std::uint32_t>(netlist.inputCount());
  outputCount_ = static_cast<std::uint32_t>(netlist.outputs().size());
  wireCapPerFanout_ = netlist.wireCapPerFanout();
  outputLoadCap_ = netlist.outputLoadCap();
  keepCells_ = options.keepCells;

  isGate_ = arena_.allocateArray<std::uint8_t>(nodeCount_);
  isOutput_ = arena_.allocateArray<std::uint8_t>(nodeCount_);
  faninOff_ = arena_.allocateArray<std::uint32_t>(nodeCount_ + 1);
  fanoutOff_ = arena_.allocateArray<std::uint32_t>(nodeCount_ + 1);
  loadCap_ = arena_.allocateArray<double>(nodeCount_);
  driveRes_ = arena_.allocateArray<double>(nodeCount_);
  selfCap_ = arena_.allocateArray<double>(nodeCount_);
  inputCap_ = arena_.allocateArray<double>(nodeCount_);
  outputs_ = arena_.allocateArray<std::uint32_t>(outputCount_);
  levelOf_ = arena_.allocateArray<std::uint32_t>(nodeCount_);

  // Pass 1: offsets and per-node scalars.
  std::uint64_t faninEdges = 0;
  std::uint64_t fanoutEdges = 0;
  for (std::uint32_t i = 0; i < nodeCount_; ++i) {
    const Netlist::Node& node = netlist.node(static_cast<int>(i));
    faninOff_[i] = static_cast<std::uint32_t>(faninEdges);
    fanoutOff_[i] = static_cast<std::uint32_t>(fanoutEdges);
    faninEdges += node.fanins.size();
    fanoutEdges += node.fanouts.size();
    const bool gate = node.kind == Netlist::NodeKind::Gate;
    isGate_[i] = gate ? 1 : 0;
    isOutput_[i] = node.isOutput ? 1 : 0;
    loadCap_[i] = netlist.loadCap(static_cast<int>(i));
    driveRes_[i] = gate ? node.cell.driveResistance : 0.0;
    selfCap_[i] = gate ? node.cell.selfCap : 0.0;
    inputCap_[i] = gate ? node.cell.inputCap : 0.0;
  }
  if (faninEdges >= std::numeric_limits<std::uint32_t>::max() ||
      fanoutEdges >= std::numeric_limits<std::uint32_t>::max()) {
    throw std::invalid_argument("NetlistSoA: edge count out of 32-bit range");
  }
  faninOff_[nodeCount_] = static_cast<std::uint32_t>(faninEdges);
  fanoutOff_[nodeCount_] = static_cast<std::uint32_t>(fanoutEdges);
  faninIdx_ = arena_.allocateArray<std::uint32_t>(
      static_cast<std::size_t>(faninEdges));
  fanoutIdx_ = arena_.allocateArray<std::uint32_t>(
      static_cast<std::size_t>(fanoutEdges));

  // Pass 2: adjacency in object edge order (the STA sweeps iterate these
  // in the same order the object engine iterated the Node vectors, which
  // is what keeps the refactor bit-identical).
  std::uint32_t fi = 0;
  std::uint32_t fo = 0;
  for (std::uint32_t i = 0; i < nodeCount_; ++i) {
    const Netlist::Node& node = netlist.node(static_cast<int>(i));
    for (int f : node.fanins) faninIdx_[fi++] = static_cast<std::uint32_t>(f);
    for (int c : node.fanouts) fanoutIdx_[fo++] = static_cast<std::uint32_t>(c);
  }
  for (std::uint32_t k = 0; k < outputCount_; ++k) {
    outputs_[k] = static_cast<std::uint32_t>(netlist.outputs()[k]);
  }

  // Level schedule. A Netlist is a DAG by construction (fanins reference
  // earlier ids only), so levelize can only fail on internal corruption.
  LevelSchedule schedule =
      levelize(nodeCount_, {faninOff_, static_cast<std::size_t>(nodeCount_) + 1},
               {faninIdx_, static_cast<std::size_t>(faninEdges)});
  if (!schedule.ok()) {
    throw std::logic_error(std::string("NetlistSoA: levelize failed: ") +
                           schedule.message);
  }
  levelCount_ = schedule.levelCount;
  levelOffsets_ = arena_.allocateArray<std::uint32_t>(
      static_cast<std::size_t>(levelCount_) + 1);
  order_ = arena_.allocateArray<std::uint32_t>(nodeCount_);
  for (std::uint32_t i = 0; i < nodeCount_; ++i) {
    levelOf_[i] = schedule.levelOf[i];
    order_[i] = schedule.order[i];
  }
  for (std::uint32_t l = 0; l <= levelCount_; ++l) {
    levelOffsets_[l] = schedule.levelOffsets[l];
  }

  cells_.clear();
  if (keepCells_) {
    cells_.reserve(nodeCount_);
    for (std::uint32_t i = 0; i < nodeCount_; ++i) {
      const Netlist::Node& node = netlist.node(static_cast<int>(i));
      cells_.push_back(node.kind == Netlist::NodeKind::Gate ? node.cell
                                                            : Cell{});
    }
  }

  NANO_OBS_COUNT("circuit/soa_builds", 1);
  NANO_OBS_GAUGE("circuit/soa_bytes", static_cast<double>(arena_.bytesUsed()));
  NANO_OBS_GAUGE("circuit/soa_levels", static_cast<double>(levelCount_));
}

const Cell& NetlistSoA::cell(std::uint32_t id) const {
  if (!keepCells_) {
    throw std::logic_error("NetlistSoA::cell: built without keepCells");
  }
  return cells_.at(id);
}

void NetlistSoA::setCell(std::uint32_t gate, const Cell& cell) {
  if (gate >= nodeCount_ || isGate_[gate] == 0) {
    throw std::invalid_argument("NetlistSoA::setCell: not a gate");
  }
  driveRes_[gate] = cell.driveResistance;
  selfCap_[gate] = cell.selfCap;
  inputCap_[gate] = cell.inputCap;
  if (keepCells_) cells_[gate] = cell;
  // Refresh each fanin driver's load with Netlist::refreshLoadCap's exact
  // summation order (fanout edge order, then wire, then external load).
  for (const std::uint32_t f : fanins(gate)) {
    double cap = 0.0;
    const auto consumers = fanouts(f);
    for (const std::uint32_t c : consumers) cap += inputCap_[c];
    cap += wireCapPerFanout_ * static_cast<double>(consumers.size());
    if (isOutput_[f] != 0) cap += outputLoadCap_;
    loadCap_[f] = cap;
  }
}

Netlist NetlistSoA::toNetlist() const {
  if (!keepCells_) {
    throw std::logic_error("NetlistSoA::toNetlist: built without keepCells");
  }
  Netlist out(wireCapPerFanout_, outputLoadCap_);
  out.reserve(static_cast<int>(nodeCount_));
  for (std::uint32_t i = 0; i < nodeCount_; ++i) {
    if (isGate_[i] == 0) {
      out.addInput();
      continue;
    }
    const auto fs = fanins(i);
    out.addGate(cells_[i], std::vector<int>(fs.begin(), fs.end()));
  }
  for (const std::uint32_t id : outputs()) {
    out.markOutput(static_cast<int>(id));
  }
  return out;
}

}  // namespace nano::circuit
