// Index-based structure-of-arrays mirror of a circuit::Netlist, built once
// and swept flat by the STA engines. Where the object netlist stores one
// heap-allocated Node per gate (cell struct, fanin/fanout vectors), the
// SoA form packs everything the timing hot path touches into arena-backed
// parallel arrays with 32-bit indices:
//
//   isGate / isOutput        per-node flags (uint8)
//   fanin CSR, fanout CSR    adjacency, object edge order preserved
//   loadCap / driveRes /     the exact operands of Cell::delay and the
//     selfCap / inputCap       load-cap cache, mirrored bit-for-bit
//   outputs                  endpoint list, insertion order preserved
//   level schedule           levelize() buckets for level-parallel sweeps
//
// The mirror is semantically lossless: with keepCells on (the default) the
// full Cell structs ride along in a cold std::vector and toNetlist()
// reconstructs an object netlist whose netlist_io serialization is
// byte-identical to the source's. rebuild() rewinds the arena and rebuilds
// in place, so a steady-state consumer re-mirroring a same-shaped netlist
// allocates nothing.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "circuit/levelize.h"
#include "circuit/netlist.h"
#include "util/arena.h"

namespace nano::circuit {

/// Build knobs for NetlistSoA (namespace scope so it is a complete type
/// when used as a default argument below).
struct SoABuildOptions {
  /// Keep per-node Cell structs (cold data) so cell()/toNetlist() work.
  /// Turn off for pure-timing mirrors (e.g. inside IncrementalSta) to
  /// skip the per-gate string copies.
  bool keepCells = true;
};

class NetlistSoA {
 public:
  using BuildOptions = SoABuildOptions;

  NetlistSoA() = default;
  explicit NetlistSoA(const Netlist& netlist, BuildOptions options = {});

  /// Rebuild from `netlist`, reusing the arena (zero heap growth when the
  /// new shape fits the high-water mark).
  void rebuild(const Netlist& netlist, BuildOptions options = {});

  [[nodiscard]] std::uint32_t nodeCount() const { return nodeCount_; }
  [[nodiscard]] std::uint32_t gateCount() const { return gateCount_; }
  [[nodiscard]] std::uint32_t inputCount() const { return inputCount_; }
  [[nodiscard]] bool isGate(std::uint32_t id) const { return isGate_[id] != 0; }
  [[nodiscard]] bool isOutput(std::uint32_t id) const {
    return isOutput_[id] != 0;
  }

  [[nodiscard]] std::span<const std::uint32_t> fanins(std::uint32_t id) const {
    return {faninIdx_ + faninOff_[id], faninOff_[id + 1] - faninOff_[id]};
  }
  [[nodiscard]] std::span<const std::uint32_t> fanouts(std::uint32_t id) const {
    return {fanoutIdx_ + fanoutOff_[id], fanoutOff_[id + 1] - fanoutOff_[id]};
  }
  [[nodiscard]] std::span<const std::uint32_t> outputs() const {
    return {outputs_, outputCount_};
  }

  /// Exact operands of the timing model, mirrored from the object netlist.
  [[nodiscard]] double loadCap(std::uint32_t id) const { return loadCap_[id]; }
  [[nodiscard]] double driveResistance(std::uint32_t id) const {
    return driveRes_[id];
  }
  [[nodiscard]] double selfCap(std::uint32_t id) const { return selfCap_[id]; }
  [[nodiscard]] double inputCap(std::uint32_t id) const {
    return inputCap_[id];
  }

  /// Gate delay driving its current load; bit-identical to
  /// node.cell.delay(netlist.loadCap(id)). Zero for primary inputs.
  [[nodiscard]] double gateDelay(std::uint32_t id) const {
    return isGate_[id] != 0
               ? 0.69 * driveRes_[id] * (loadCap_[id] + selfCap_[id])
               : 0.0;
  }

  // Level schedule (levelize() over the fanin CSR): nodes of level L are
  // order()[levelOffsets()[L] .. levelOffsets()[L+1]), ascending id.
  [[nodiscard]] std::uint32_t levelCount() const { return levelCount_; }
  [[nodiscard]] std::uint32_t levelOf(std::uint32_t id) const {
    return levelOf_[id];
  }
  [[nodiscard]] std::span<const std::uint32_t> levelOffsets() const {
    return {levelOffsets_, static_cast<std::size_t>(levelCount_) + 1};
  }
  [[nodiscard]] std::span<const std::uint32_t> order() const {
    return {order_, nodeCount_};
  }

  [[nodiscard]] double wireCapPerFanout() const { return wireCapPerFanout_; }
  [[nodiscard]] double outputLoadCap() const { return outputLoadCap_; }

  /// Cold cell data (requires keepCells). PI slots hold default cells.
  [[nodiscard]] const Cell& cell(std::uint32_t id) const;
  [[nodiscard]] bool hasCells() const { return keepCells_; }

  /// Mirror of Netlist::replaceCell: swap a gate's cell parameters and
  /// refresh the load-cap cache of its fanin drivers with the same
  /// summation order, so both representations stay bit-identical.
  void setCell(std::uint32_t gate, const Cell& cell);

  /// Reconstruct an object netlist (requires keepCells). Node ids, edge
  /// order and output order are preserved, so writeNetlist() output is
  /// byte-identical to the source netlist's.
  [[nodiscard]] Netlist toNetlist() const;

  /// Arena footprint of the hot arrays, bytes.
  [[nodiscard]] std::size_t arenaBytes() const { return arena_.bytesUsed(); }
  /// Heap-growth events of the arena over this object's lifetime.
  [[nodiscard]] std::int64_t arenaGrowthCount() const {
    return arena_.growthCount();
  }

 private:
  util::Arena arena_;
  std::uint32_t nodeCount_ = 0;
  std::uint32_t gateCount_ = 0;
  std::uint32_t inputCount_ = 0;
  std::uint32_t outputCount_ = 0;
  std::uint32_t levelCount_ = 0;
  double wireCapPerFanout_ = 0.0;
  double outputLoadCap_ = 0.0;
  bool keepCells_ = false;

  std::uint8_t* isGate_ = nullptr;
  std::uint8_t* isOutput_ = nullptr;
  std::uint32_t* faninOff_ = nullptr;
  std::uint32_t* faninIdx_ = nullptr;
  std::uint32_t* fanoutOff_ = nullptr;
  std::uint32_t* fanoutIdx_ = nullptr;
  std::uint32_t* outputs_ = nullptr;
  double* loadCap_ = nullptr;
  double* driveRes_ = nullptr;
  double* selfCap_ = nullptr;
  double* inputCap_ = nullptr;
  std::uint32_t* levelOf_ = nullptr;
  std::uint32_t* levelOffsets_ = nullptr;
  std::uint32_t* order_ = nullptr;

  std::vector<Cell> cells_;  ///< cold; empty unless keepCells
};

}  // namespace nano::circuit
