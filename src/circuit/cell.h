// Standard-cell model: logic cells characterized from the compact device
// model with logical-effort-style delay, energy and leakage. Cells carry
// their Vth flavor and Vdd domain so the multi-Vdd / multi-Vth optimizers
// (paper Sections 2.4, 3.2, 3.3) can swap them per gate.
#pragma once

#include <string>

#include "device/gate_model.h"
#include "tech/itrs.h"

namespace nano::circuit {

/// Logic function of a cell.
enum class CellFunction {
  Inv,
  Buf,
  Nand2,
  Nand3,
  Nor2,
  Nor3,
  Xor2,
  LevelConverter,  ///< Vdd,l -> Vdd,h restoring stage (paper Section 2.4)
};

/// Number of logic inputs of a function.
int faninOf(CellFunction function);
/// Logical effort g (input cap per drive relative to an inverter).
double logicalEffortOf(CellFunction function);
/// Parasitic delay p in units of the inverter parasitic.
double parasiticOf(CellFunction function);
/// Leakage factor relative to an equal-drive inverter (series stacks leak
/// less; wide NOR pull-ups leak more).
double leakageFactorOf(CellFunction function);
/// Short name, e.g. "NAND2".
const char* nameOf(CellFunction function);

/// Threshold flavor of a cell.
enum class VthClass { Low, High };

/// Supply domain of a cell in a multi-Vdd design.
enum class VddDomain { High, Low };

/// One characterized cell instance. Value type: gates own their cell, so
/// on-the-fly generated sizes (paper Section 2.3) need no registry.
struct Cell {
  std::string name;
  CellFunction function = CellFunction::Inv;
  VthClass vth = VthClass::Low;
  VddDomain vddDomain = VddDomain::High;
  double drive = 1.0;           ///< strength, multiples of unit inverter
  double vdd = 0.0;             ///< operating supply, V
  double inputCap = 0.0;        ///< F per input
  double driveResistance = 0.0; ///< ohm, effective switching resistance
  double selfCap = 0.0;         ///< F at the output (diffusion)
  double leakage = 0.0;         ///< W, state-averaged
  double area = 0.0;            ///< m^2

  [[nodiscard]] int fanin() const { return faninOf(function); }
  /// Propagation delay driving `loadCap` (external), s.
  [[nodiscard]] double delay(double loadCap) const;
  /// Supply energy per output transition driving `loadCap`, J.
  [[nodiscard]] double switchingEnergy(double loadCap) const;
};

/// Characterizes cells of a node at given operating corners.
class CellCharacterizer {
 public:
  /// `vthLow`/`vthHigh`: NMOS thresholds of the two flavors, specified at
  /// the node's nominal Vdd. Pass vthHigh <= vthLow + offset from
  /// makeDualVth() or custom values.
  CellCharacterizer(const tech::TechNode& node, double vthLow, double vthHigh,
                    double vddHigh, double vddLow, double temperature = 300.0);

  /// Default flavors for a node: low Vth meets the Ion target; high Vth is
  /// +100 mV (the paper's dual-Vth offset). Vdd,l = 0.65 * Vdd,h (the CVS
  /// optimum the paper quotes).
  static CellCharacterizer forNode(const tech::TechNode& node,
                                   double temperature = 300.0);

  [[nodiscard]] const tech::TechNode& node() const { return *node_; }
  [[nodiscard]] double vddOf(VddDomain domain) const;
  [[nodiscard]] double vthOf(VthClass cls) const;

  /// Characterize one cell. `drive` may be fractional (on-the-fly sizes).
  /// Cheap: the unit inverter of each (Vth, Vdd) corner is characterized
  /// once at construction, so this is pure scaling arithmetic.
  [[nodiscard]] Cell characterize(CellFunction function, double drive,
                                  VthClass vth, VddDomain domain) const;

 private:
  /// Unit-inverter quantities of one (Vth flavor, Vdd domain) corner,
  /// hoisted whole from the historical per-call expressions so the memo
  /// is a bitwise no-op.
  struct UnitCorner {
    double r = 0.0;        ///< ohm, mean 0.75*Vdd/Idrive of N and P
    double cin = 0.0;      ///< F, unit input cap
    double cout = 0.0;     ///< F, unit output (diffusion) cap
    double leakage = 0.0;  ///< W, unit inverter leakage
    double area = 0.0;     ///< m^2, unit inverter footprint
  };

  const tech::TechNode* node_;
  double vthLow_;
  double vthHigh_;
  double vddHigh_;
  double vddLow_;
  double temperature_;
  UnitCorner unit_[2][2];  ///< indexed [VthClass][VddDomain]
};

/// The paper's dual-Vth offset: 100 mV between flavors (Section 3.2.2).
inline constexpr double kDualVthOffset = 0.100;
/// The paper's CVS low-supply ratio: Vdd,l ~ 0.65 * Vdd,h (Section 2.4).
inline constexpr double kCvsVddLowRatio = 0.65;

}  // namespace nano::circuit
