// Structural Verilog export: emits a gate-level module using generic
// primitives (one module per cell corner name), so designs built or
// optimized here can be inspected with standard netlist tooling.
// Export-only; the text netlist format (netlist_io.h) is the round-trip
// path.
#pragma once

#include <iosfwd>
#include <string>

#include "circuit/netlist.h"

namespace nano::circuit {

/// Write `netlist` as a structural Verilog module named `moduleName`.
/// Primary inputs become input ports in0..inN-1; outputs out0..outM-1.
/// Each gate instantiates a module named after its cell (sanitized), with
/// ports (y, a[, b[, c]]).
void writeVerilog(std::ostream& os, const Netlist& netlist,
                  const std::string& moduleName = "design");

/// The sanitized primitive name used for a cell (exposed for tests).
std::string verilogCellName(const Cell& cell);

}  // namespace nano::circuit
