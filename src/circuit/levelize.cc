#include "circuit/levelize.h"

#include <algorithm>

namespace nano::circuit {

const char* levelizeStatusName(LevelizeStatus status) {
  switch (status) {
    case LevelizeStatus::Ok: return "ok";
    case LevelizeStatus::SelfLoop: return "self_loop";
    case LevelizeStatus::Cycle: return "cycle";
    case LevelizeStatus::BadIndex: return "bad_index";
    case LevelizeStatus::BadShape: return "bad_shape";
  }
  return "unknown";
}

namespace {

LevelSchedule failure(LevelizeStatus status, std::int64_t offender,
                      std::string message) {
  LevelSchedule s;
  s.status = status;
  s.offender = offender;
  s.message = std::move(message);
  return s;
}

}  // namespace

LevelSchedule levelize(std::uint32_t nodeCount,
                       std::span<const std::uint32_t> faninOffsets,
                       std::span<const std::uint32_t> fanins) {
  if (faninOffsets.size() != static_cast<std::size_t>(nodeCount) + 1) {
    return failure(LevelizeStatus::BadShape, -1,
                   "faninOffsets must have nodeCount + 1 entries");
  }
  for (std::uint32_t i = 0; i < nodeCount; ++i) {
    if (faninOffsets[i] > faninOffsets[i + 1]) {
      return failure(LevelizeStatus::BadShape, i,
                     "faninOffsets must be non-decreasing");
    }
  }
  if (!faninOffsets.empty() && faninOffsets[nodeCount] != fanins.size()) {
    return failure(LevelizeStatus::BadShape, -1,
                   "faninOffsets[nodeCount] must equal fanins.size()");
  }

  // Validate edges and count in-degrees / out-degrees in one pass.
  std::vector<std::uint32_t> indeg(nodeCount, 0);
  std::vector<std::uint32_t> outCount(nodeCount, 0);
  for (std::uint32_t i = 0; i < nodeCount; ++i) {
    for (std::uint32_t e = faninOffsets[i]; e < faninOffsets[i + 1]; ++e) {
      const std::uint32_t f = fanins[e];
      if (f >= nodeCount) {
        return failure(LevelizeStatus::BadIndex, i,
                       "node " + std::to_string(i) + " lists fanin " +
                           std::to_string(f) + " outside [0, " +
                           std::to_string(nodeCount) + ")");
      }
      if (f == i) {
        return failure(LevelizeStatus::SelfLoop, i,
                       "node " + std::to_string(i) + " is its own fanin");
      }
      ++indeg[i];
      ++outCount[f];
    }
  }

  // CSR transpose (consumers of each node), for the release sweep.
  std::vector<std::uint32_t> outOffsets(static_cast<std::size_t>(nodeCount) + 1,
                                        0);
  for (std::uint32_t i = 0; i < nodeCount; ++i) {
    outOffsets[i + 1] = outOffsets[i] + outCount[i];
  }
  std::vector<std::uint32_t> outEdges(outOffsets[nodeCount]);
  {
    std::vector<std::uint32_t> fill(outOffsets.begin(), outOffsets.end() - 1);
    for (std::uint32_t i = 0; i < nodeCount; ++i) {
      for (std::uint32_t e = faninOffsets[i]; e < faninOffsets[i + 1]; ++e) {
        outEdges[fill[fanins[e]]++] = i;
      }
    }
  }

  // Kahn's algorithm. The worklist is a plain vector used as a FIFO; a
  // node's level is finalized when it is released (all fanins done), as
  // 1 + its deepest fanin level.
  LevelSchedule s;
  s.levelOf.assign(nodeCount, 0);
  std::vector<std::uint32_t> queue;
  queue.reserve(nodeCount);
  for (std::uint32_t i = 0; i < nodeCount; ++i) {
    if (indeg[i] == 0) queue.push_back(i);
  }
  std::size_t head = 0;
  std::uint32_t maxLevel = 0;
  while (head < queue.size()) {
    const std::uint32_t n = queue[head++];
    std::uint32_t level = 0;
    for (std::uint32_t e = faninOffsets[n]; e < faninOffsets[n + 1]; ++e) {
      level = std::max(level, s.levelOf[fanins[e]] + 1);
    }
    s.levelOf[n] = level;
    maxLevel = std::max(maxLevel, level);
    for (std::uint32_t e = outOffsets[n]; e < outOffsets[n + 1]; ++e) {
      if (--indeg[outEdges[e]] == 0) queue.push_back(outEdges[e]);
    }
  }
  if (queue.size() != nodeCount) {
    std::uint32_t offender = nodeCount;
    for (std::uint32_t i = 0; i < nodeCount; ++i) {
      if (indeg[i] != 0) { offender = i; break; }
    }
    return failure(LevelizeStatus::Cycle, offender,
                   "cycle through node " + std::to_string(offender) + " (" +
                       std::to_string(nodeCount - queue.size()) +
                       " nodes unreleased)");
  }

  // Counting sort by level; iterating ids in ascending order keeps each
  // level bucket id-sorted, which the STA sweeps rely on for determinism.
  s.levelCount = nodeCount == 0 ? 0 : maxLevel + 1;
  s.levelOffsets.assign(static_cast<std::size_t>(s.levelCount) + 1, 0);
  for (std::uint32_t i = 0; i < nodeCount; ++i) ++s.levelOffsets[s.levelOf[i] + 1];
  for (std::uint32_t l = 0; l < s.levelCount; ++l) {
    s.levelOffsets[l + 1] += s.levelOffsets[l];
  }
  s.order.assign(nodeCount, 0);
  {
    std::vector<std::uint32_t> fill(s.levelOffsets.begin(),
                                    s.levelOffsets.end() - 1);
    for (std::uint32_t i = 0; i < nodeCount; ++i) {
      s.order[fill[s.levelOf[i]]++] = i;
    }
  }
  return s;
}

}  // namespace nano::circuit
