// Bit-parallel logic simulation: evaluate a netlist's boolean function on
// 64 input patterns at once. Powers functional verification — that the
// generated adders/multipliers actually compute, that the optimizers only
// change implementation (never logic), and that serialization round-trips
// are exact — and provides measured switching activity to cross-check the
// probabilistic propagation.
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/netlist.h"
#include "util/rng.h"

namespace nano::circuit {

/// 64 parallel boolean samples per node.
using Word = std::uint64_t;

/// Evaluate every node for the given primary-input words (one Word per
/// input, in input order). Returns one Word per node.
std::vector<Word> evaluate(const Netlist& netlist,
                           const std::vector<Word>& inputs);

/// Output words (netlist.outputs() order) for the given inputs.
std::vector<Word> evaluateOutputs(const Netlist& netlist,
                                  const std::vector<Word>& inputs);

/// True when the two netlists compute identical outputs on `rounds` x 64
/// random patterns (they must agree in input and output counts).
/// Monte-Carlo equivalence: sound for disproof, probabilistic for proof.
bool randomlyEquivalent(const Netlist& a, const Netlist& b, util::Rng& rng,
                        int rounds = 64);

/// Measured per-node switching activity (transitions per pattern) over
/// `rounds` x 64 random patterns with input toggle probability
/// `piActivity`; cross-checks power::propagateActivity.
std::vector<double> measureActivity(const Netlist& netlist, util::Rng& rng,
                                    double piActivity = 0.5, int rounds = 64);

}  // namespace nano::circuit
