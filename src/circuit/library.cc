#include "circuit/library.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace nano::circuit {

namespace {
CellCharacterizer makeCharacterizer(const tech::TechNode& node,
                                    const LibraryConfig& config,
                                    double temperature) {
  const double vthLow = device::solveVthForIon(node, node.ionTarget);
  return CellCharacterizer(node, vthLow, vthLow + config.vthOffset, node.vdd,
                           config.vddLowRatio * node.vdd, temperature);
}
}  // namespace

Library::Library(const tech::TechNode& node, LibraryConfig config,
                 double temperature)
    : charzr_(makeCharacterizer(node, config, temperature)),
      config_(std::move(config)) {
  if (config_.driveStrengths.empty() || config_.functions.empty()) {
    throw std::invalid_argument("Library: empty config");
  }
  std::sort(config_.driveStrengths.begin(), config_.driveStrengths.end());
  std::vector<VthClass> vths = {VthClass::Low};
  if (config_.dualVth) vths.push_back(VthClass::High);
  std::vector<VddDomain> domains = {VddDomain::High};
  if (config_.dualVdd) domains.push_back(VddDomain::Low);

  for (CellFunction fn : config_.functions) {
    for (VthClass vth : vths) {
      for (VddDomain dom : domains) {
        for (double drive : config_.driveStrengths) {
          cells_.push_back(charzr_.characterize(fn, drive, vth, dom));
        }
      }
    }
  }
}

const Cell& Library::pick(CellFunction function, double minDrive, VthClass vth,
                          VddDomain domain) const {
  const Cell* best = nullptr;     // smallest with drive >= minDrive
  const Cell* largest = nullptr;  // fallback
  for (const Cell& c : cells_) {
    if (c.function != function || c.vth != vth || c.vddDomain != domain) continue;
    if (!largest || c.drive > largest->drive) largest = &c;
    if (c.drive >= minDrive && (!best || c.drive < best->drive)) best = &c;
  }
  if (best) return *best;
  if (largest) return *largest;
  throw std::out_of_range("Library::pick: corner not in library");
}

Cell Library::recorner(const Cell& cell, VthClass vth, VddDomain domain) const {
  return charzr_.characterize(cell.function, cell.drive, vth, domain);
}

Cell Library::generateCustom(CellFunction function, double exactDrive,
                             VthClass vth, VddDomain domain) const {
  return charzr_.characterize(function, exactDrive, vth, domain);
}

double Library::smallestInverterInputCap() const {
  double best = std::numeric_limits<double>::max();
  for (const Cell& c : cells_) {
    if (c.function == CellFunction::Inv && c.vddDomain == VddDomain::High) {
      best = std::min(best, c.inputCap);
    }
  }
  if (best == std::numeric_limits<double>::max()) {
    throw std::out_of_range("Library: no inverter");
  }
  return best;
}

}  // namespace nano::circuit
