// Plain-text netlist serialization. A small, line-oriented format so
// designs can be saved, diffed and reloaded; cells are stored as their
// (function, drive, Vth, Vdd-domain) corner and re-characterized against a
// library on load.
//
//   # comment
//   netlist wirecap <F/fanout> outload <F>
//   input <id>
//   gate <id> <FUNCTION> drive <x> vth <low|high> vdd <high|low> fanins <id...>
//   output <id>
//
// Node ids must appear in topological order (inputs/gates before use),
// matching the in-memory construction discipline.
#pragma once

#include <iosfwd>

#include "circuit/library.h"
#include "circuit/netlist.h"

namespace nano::circuit {

/// Serialize `netlist` to `os`.
void writeNetlist(std::ostream& os, const Netlist& netlist);

/// Parse a netlist from `is`, re-characterizing every cell with
/// `library`'s characterizer (exact drives are honored via on-the-fly
/// generation). Throws std::runtime_error with a line number on malformed
/// input.
Netlist readNetlist(std::istream& is, const Library& library);

}  // namespace nano::circuit
