#include "circuit/simulate.h"

#include <stdexcept>

namespace nano::circuit {

namespace {

Word evaluateGate(CellFunction function, const std::vector<Word>& in) {
  switch (function) {
    case CellFunction::Inv: return ~in[0];
    case CellFunction::Buf:
    case CellFunction::LevelConverter: return in[0];
    case CellFunction::Nand2: return ~(in[0] & in[1]);
    case CellFunction::Nand3: return ~(in[0] & in[1] & in[2]);
    case CellFunction::Nor2: return ~(in[0] | in[1]);
    case CellFunction::Nor3: return ~(in[0] | in[1] | in[2]);
    case CellFunction::Xor2: return in[0] ^ in[1];
  }
  throw std::logic_error("evaluateGate: bad function");
}

}  // namespace

std::vector<Word> evaluate(const Netlist& netlist,
                           const std::vector<Word>& inputs) {
  if (static_cast<int>(inputs.size()) != netlist.inputCount()) {
    throw std::invalid_argument("evaluate: input count mismatch");
  }
  std::vector<Word> value(static_cast<std::size_t>(netlist.nodeCount()), 0);
  std::size_t nextInput = 0;
  std::vector<Word> fanin;
  for (int i = 0; i < netlist.nodeCount(); ++i) {
    const auto& node = netlist.node(i);
    if (node.kind == Netlist::NodeKind::PrimaryInput) {
      value[static_cast<std::size_t>(i)] = inputs[nextInput++];
      continue;
    }
    fanin.clear();
    for (int f : node.fanins) {
      fanin.push_back(value[static_cast<std::size_t>(f)]);
    }
    value[static_cast<std::size_t>(i)] =
        evaluateGate(node.cell.function, fanin);
  }
  return value;
}

std::vector<Word> evaluateOutputs(const Netlist& netlist,
                                  const std::vector<Word>& inputs) {
  const std::vector<Word> value = evaluate(netlist, inputs);
  std::vector<Word> out;
  out.reserve(netlist.outputs().size());
  for (int id : netlist.outputs()) {
    out.push_back(value[static_cast<std::size_t>(id)]);
  }
  return out;
}

bool randomlyEquivalent(const Netlist& a, const Netlist& b, util::Rng& rng,
                        int rounds) {
  if (a.inputCount() != b.inputCount() ||
      a.outputs().size() != b.outputs().size()) {
    return false;
  }
  for (int r = 0; r < rounds; ++r) {
    std::vector<Word> inputs(static_cast<std::size_t>(a.inputCount()));
    for (Word& w : inputs) {
      w = (static_cast<Word>(rng.engine()()) << 32) ^
          static_cast<Word>(rng.engine()());
    }
    if (evaluateOutputs(a, inputs) != evaluateOutputs(b, inputs)) {
      return false;
    }
  }
  return true;
}

std::vector<double> measureActivity(const Netlist& netlist, util::Rng& rng,
                                    double piActivity, int rounds) {
  if (piActivity < 0 || piActivity > 1) {
    throw std::invalid_argument("measureActivity: bad activity");
  }
  std::vector<long> transitions(static_cast<std::size_t>(netlist.nodeCount()),
                                0);
  // Random initial state; each subsequent pattern toggles each input bit
  // with probability piActivity (temporally correlated streams).
  std::vector<Word> inputs(static_cast<std::size_t>(netlist.inputCount()));
  for (Word& w : inputs) {
    w = (static_cast<Word>(rng.engine()()) << 32) ^
        static_cast<Word>(rng.engine()());
  }
  std::vector<Word> prev = evaluate(netlist, inputs);
  long samples = 0;
  for (int r = 0; r < rounds; ++r) {
    for (Word& w : inputs) {
      Word toggle = 0;
      for (int bit = 0; bit < 64; ++bit) {
        if (rng.bernoulli(piActivity)) toggle |= Word{1} << bit;
      }
      w ^= toggle;
    }
    const std::vector<Word> cur = evaluate(netlist, inputs);
    for (std::size_t i = 0; i < cur.size(); ++i) {
      Word diff = cur[i] ^ prev[i];
      for (; diff; diff &= diff - 1) ++transitions[i];
    }
    prev = cur;
    samples += 64;
  }
  std::vector<double> activity(transitions.size());
  for (std::size_t i = 0; i < transitions.size(); ++i) {
    activity[i] =
        static_cast<double>(transitions[i]) / static_cast<double>(samples);
  }
  return activity;
}

}  // namespace nano::circuit
