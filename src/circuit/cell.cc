#include "circuit/cell.h"

#include <cmath>
#include <stdexcept>

#include "util/units.h"

namespace nano::circuit {

using namespace nano::units;

int faninOf(CellFunction f) {
  switch (f) {
    case CellFunction::Inv:
    case CellFunction::Buf:
    case CellFunction::LevelConverter:
      return 1;
    case CellFunction::Nand2:
    case CellFunction::Nor2:
    case CellFunction::Xor2:
      return 2;
    case CellFunction::Nand3:
    case CellFunction::Nor3:
      return 3;
  }
  throw std::logic_error("faninOf: bad function");
}

double logicalEffortOf(CellFunction f) {
  switch (f) {
    case CellFunction::Inv: return 1.0;
    case CellFunction::Buf: return 1.0;
    case CellFunction::Nand2: return 4.0 / 3.0;
    case CellFunction::Nand3: return 5.0 / 3.0;
    case CellFunction::Nor2: return 5.0 / 3.0;
    case CellFunction::Nor3: return 7.0 / 3.0;
    case CellFunction::Xor2: return 2.0;
    case CellFunction::LevelConverter: return 1.5;
  }
  throw std::logic_error("logicalEffortOf: bad function");
}

double parasiticOf(CellFunction f) {
  switch (f) {
    case CellFunction::Inv: return 1.0;
    case CellFunction::Buf: return 2.0;
    case CellFunction::Nand2: return 2.0;
    case CellFunction::Nand3: return 3.0;
    case CellFunction::Nor2: return 2.0;
    case CellFunction::Nor3: return 3.0;
    case CellFunction::Xor2: return 4.0;
    // Cross-coupled pull-up fights the input: slow (~3 inverter parasitics,
    // giving the ~2 FO4 conversion penalty quoted in multi-Vdd studies).
    case CellFunction::LevelConverter: return 6.0;
  }
  throw std::logic_error("parasiticOf: bad function");
}

double leakageFactorOf(CellFunction f) {
  switch (f) {
    case CellFunction::Inv: return 1.0;
    case CellFunction::Buf: return 1.8;
    case CellFunction::Nand2: return 0.7;   // stacked NMOS off-state
    case CellFunction::Nand3: return 0.55;
    case CellFunction::Nor2: return 0.8;
    case CellFunction::Nor3: return 0.7;
    case CellFunction::Xor2: return 1.6;
    case CellFunction::LevelConverter: return 1.5;
  }
  throw std::logic_error("leakageFactorOf: bad function");
}

const char* nameOf(CellFunction f) {
  switch (f) {
    case CellFunction::Inv: return "INV";
    case CellFunction::Buf: return "BUF";
    case CellFunction::Nand2: return "NAND2";
    case CellFunction::Nand3: return "NAND3";
    case CellFunction::Nor2: return "NOR2";
    case CellFunction::Nor3: return "NOR3";
    case CellFunction::Xor2: return "XOR2";
    case CellFunction::LevelConverter: return "LVLCONV";
  }
  throw std::logic_error("nameOf: bad function");
}

double Cell::delay(double loadCap) const {
  return 0.69 * driveResistance * (loadCap + selfCap);
}

double Cell::switchingEnergy(double loadCap) const {
  return (loadCap + selfCap) * vdd * vdd;
}

CellCharacterizer::CellCharacterizer(const tech::TechNode& node, double vthLow,
                                     double vthHigh, double vddHigh,
                                     double vddLow, double temperature)
    : node_(&node),
      vthLow_(vthLow),
      vthHigh_(vthHigh),
      vddHigh_(vddHigh),
      vddLow_(vddLow),
      temperature_(temperature) {
  if (vddHigh <= 0 || vddLow <= 0 || vddLow > vddHigh) {
    throw std::invalid_argument("CellCharacterizer: bad supplies");
  }
  if (vthHigh < vthLow) {
    throw std::invalid_argument("CellCharacterizer: vthHigh < vthLow");
  }
  // Memoize the four corner unit inverters up front: every characterize()
  // call used to rebuild an InverterModel (two self-consistent Ion solves
  // plus the leakage evaluation) for one of these fixed corners. The Vth
  // is specified at the corner's operating supply (DIBL reference = vdd),
  // matching how a library would be characterized per power domain. Each
  // stored value is a whole historical subexpression, so the memo changes
  // no bits.
  const device::GateGeometry unitGeom{2.0, 4.0};
  const double drawnL = node_->featureNm * nm;
  for (const VthClass cls : {VthClass::Low, VthClass::High}) {
    for (const VddDomain domain : {VddDomain::High, VddDomain::Low}) {
      const double vdd = vddOf(domain);
      const device::InverterModel unit(*node_, vthOf(cls), vdd, unitGeom,
                                       temperature_);
      UnitCorner& c =
          unit_[static_cast<int>(cls)][static_cast<int>(domain)];
      const double reqN = 0.75 * vdd / unit.driveCurrentN();
      const double reqP = 0.75 * vdd / unit.driveCurrentP();
      c.r = 0.5 * (reqN + reqP);
      c.cin = unit.inputCap();
      c.cout = unit.outputCap();
      c.leakage = unit.leakagePower();
      c.area = (unit.wn() + unit.wp()) * 5.0 * drawnL;
    }
  }
}

CellCharacterizer CellCharacterizer::forNode(const tech::TechNode& node,
                                             double temperature) {
  const double vthLow = device::solveVthForIon(node, node.ionTarget);
  return CellCharacterizer(node, vthLow, vthLow + kDualVthOffset, node.vdd,
                           kCvsVddLowRatio * node.vdd, temperature);
}

double CellCharacterizer::vddOf(VddDomain domain) const {
  return domain == VddDomain::High ? vddHigh_ : vddLow_;
}

double CellCharacterizer::vthOf(VthClass cls) const {
  return cls == VthClass::Low ? vthLow_ : vthHigh_;
}

Cell CellCharacterizer::characterize(CellFunction function, double drive,
                                     VthClass vth, VddDomain domain) const {
  if (drive <= 0) throw std::invalid_argument("characterize: drive <= 0");
  const double vdd = vddOf(domain);
  const UnitCorner& unit =
      unit_[static_cast<int>(vth)][static_cast<int>(domain)];

  Cell cell;
  cell.function = function;
  cell.vth = vth;
  cell.vddDomain = domain;
  cell.drive = drive;
  cell.vdd = vdd;
  cell.inputCap = logicalEffortOf(function) * drive * unit.cin;
  cell.driveResistance = unit.r / drive;
  cell.selfCap = parasiticOf(function) * drive * unit.cout;
  cell.leakage = leakageFactorOf(function) * drive * unit.leakage *
                 static_cast<double>(faninOf(function));
  cell.area = unit.area * drive * (0.7 + 0.5 * faninOf(function));

  cell.name = std::string(nameOf(function)) + "_X" +
              std::to_string(drive).substr(0, 4) +
              (vth == VthClass::High ? "_HVT" : "_LVT") +
              (domain == VddDomain::Low ? "_VL" : "");
  return cell;
}

}  // namespace nano::circuit
