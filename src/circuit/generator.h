// Synthetic netlist generators: random DAG logic with a controllable depth
// profile (the stand-in for MPU functional blocks; see DESIGN.md's
// substitutions table), plus structured circuits (ripple-carry adder,
// inverter chains, buffer trees) for tests and examples.
#pragma once

#include "circuit/library.h"
#include "circuit/netlist.h"
#include "util/rng.h"

namespace nano::circuit {

/// Random-logic generation knobs.
struct GeneratorConfig {
  int inputs = 64;
  int gates = 2000;
  int outputs = 64;
  /// Target logic depth (levels) of the deepest paths.
  int depth = 24;
  /// Skew of the gate-per-level profile: 1.0 = uniform; > 1 concentrates
  /// gates at shallow levels, producing the slack-rich profile the paper
  /// quotes ("over half of all timing paths use less than half the cycle").
  double shallowBias = 2.5;
  /// Fraction of outputs tapped from intermediate (shallow) levels.
  double earlyOutputFraction = 0.65;
};

/// GeneratorConfig scaled to `gates` total gates (64 .. millions) that
/// keeps the paper's slack-rich profile at any size: I/O counts grow with
/// sqrt(gates) (Rent-like), logic depth with log2(gates), and the
/// shallow-bias / early-output knobs stay at their defaults so "over half
/// of all timing paths use less than half the cycle" holds from the 2k
/// test circuits up to the million-gate scale runs.
GeneratorConfig scaledConfig(int gates);

/// Generate a random combinational DAG using smallest-drive low-Vth cells
/// from `library`. Deterministic given `rng` state.
Netlist randomLogic(const Library& library, const GeneratorConfig& config,
                    util::Rng& rng);

/// A register-bounded design slice: `blocks` independent random DAGs whose
/// depths spread from config.depth/4 up to config.depth, sharing no logic
/// (separate pipeline stages). This reproduces the wide path-delay
/// histogram of high-end MPUs the paper cites ("over half of all timing
/// paths commonly use less than half the clock cycle") and is the intended
/// substrate for the CVS / dual-Vth experiments. Total gate count ~=
/// config.gates split across the blocks.
Netlist pipelinedLogic(const Library& library, const GeneratorConfig& config,
                       util::Rng& rng, int blocks = 8);

/// N-bit ripple-carry adder built from NAND2/INV decompositions of full
/// adders (9 NAND2 per bit). 2N+1 inputs, N+1 outputs. Critical path is
/// the O(N) carry chain.
Netlist rippleCarryAdder(const Library& library, int bits);

/// N-bit Kogge-Stone parallel-prefix adder (NAND/INV/XOR decomposition):
/// O(log N) logic depth at O(N log N) gates — the classic speed/area
/// counterpoint to the ripple design. 2N+1 inputs, N+1 outputs.
Netlist koggeStoneAdder(const Library& library, int bits);

/// N x N array multiplier (AND partial products + ripple reduction rows):
/// O(N^2) gates with an O(N) diagonal critical path. 2N inputs, 2N outputs.
Netlist arrayMultiplier(const Library& library, int bits);

/// A chain of `length` inverters (drive `drive`), 1 input, 1 output.
Netlist inverterChain(const Library& library, int length, double drive = 1.0);

/// Balanced buffer tree distributing 1 input to `leaves` outputs.
Netlist bufferTree(const Library& library, int leaves, int branching = 4);

}  // namespace nano::circuit
