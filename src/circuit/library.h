// Standard-cell library: a discrete set of drive strengths per function /
// Vth / Vdd corner, plus the paper's Section 2.3 "on-the-fly cell
// generation" — synthesizing a cell with exactly the drive a load needs,
// layered on top of the discrete library.
#pragma once

#include <optional>
#include <vector>

#include "circuit/cell.h"

namespace nano::circuit {

/// Library generation options.
struct LibraryConfig {
  /// Discrete drive strengths. A "rich" modern library (the paper cites 16
  /// inverter sizes); a poor one might have {1, 4, 16}.
  std::vector<double> driveStrengths = {0.5, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32};
  std::vector<CellFunction> functions = {
      CellFunction::Inv,  CellFunction::Buf,  CellFunction::Nand2,
      CellFunction::Nand3, CellFunction::Nor2, CellFunction::Nor3,
      CellFunction::Xor2, CellFunction::LevelConverter};
  bool dualVth = true;
  bool dualVdd = true;
  /// Vdd,l / Vdd,h of the low domain (paper optimum: ~0.65).
  double vddLowRatio = kCvsVddLowRatio;
  /// High-Vth flavor's offset above the low (fast) Vth (paper: 100 mV).
  double vthOffset = kDualVthOffset;
};

/// A characterized library for one node.
class Library {
 public:
  Library(const tech::TechNode& node, LibraryConfig config = {},
          double temperature = 300.0);

  [[nodiscard]] const CellCharacterizer& characterizer() const { return charzr_; }
  [[nodiscard]] const std::vector<Cell>& cells() const { return cells_; }
  [[nodiscard]] const LibraryConfig& config() const { return config_; }

  /// Smallest discrete cell of the corner whose drive >= `minDrive`;
  /// returns the largest available if none is big enough.
  [[nodiscard]] const Cell& pick(CellFunction function, double minDrive,
                                 VthClass vth = VthClass::Low,
                                 VddDomain domain = VddDomain::High) const;

  /// The same cell re-characterized in a different corner (same function
  /// and drive, new Vth/Vdd) — what the multi-Vdd/multi-Vth optimizers do.
  [[nodiscard]] Cell recorner(const Cell& cell, VthClass vth,
                              VddDomain domain) const;

  /// On-the-fly generation (paper Section 2.3): a cell with *exactly* the
  /// requested drive, not rounded to the discrete set.
  [[nodiscard]] Cell generateCustom(CellFunction function, double exactDrive,
                                    VthClass vth = VthClass::Low,
                                    VddDomain domain = VddDomain::High) const;

  /// Smallest inverter input capacitance, F — the paper's Section 2.3
  /// library-granularity metric (quotes 1.5 fF for a 180 nm library).
  [[nodiscard]] double smallestInverterInputCap() const;

 private:
  CellCharacterizer charzr_;
  LibraryConfig config_;
  std::vector<Cell> cells_;
};

}  // namespace nano::circuit
