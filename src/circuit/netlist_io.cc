#include "circuit/netlist_io.h"

#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace nano::circuit {

namespace {

const char* functionToken(CellFunction f) { return nameOf(f); }

CellFunction parseFunction(const std::string& token, int line) {
  static const std::map<std::string, CellFunction> kByName = {
      {"INV", CellFunction::Inv},       {"BUF", CellFunction::Buf},
      {"NAND2", CellFunction::Nand2},   {"NAND3", CellFunction::Nand3},
      {"NOR2", CellFunction::Nor2},     {"NOR3", CellFunction::Nor3},
      {"XOR2", CellFunction::Xor2},     {"LVLCONV", CellFunction::LevelConverter},
  };
  const auto it = kByName.find(token);
  if (it == kByName.end()) {
    throw std::runtime_error("netlist parse: unknown function '" + token +
                             "' at line " + std::to_string(line));
  }
  return it->second;
}

[[noreturn]] void fail(int line, const std::string& what) {
  throw std::runtime_error("netlist parse: " + what + " at line " +
                           std::to_string(line));
}

}  // namespace

void writeNetlist(std::ostream& os, const Netlist& netlist) {
  // Round-trippable doubles (wire caps, drives).
  os.precision(17);
  os << "# nanodesign netlist v1\n";
  os << "netlist wirecap " << netlist.wireCapPerFanout() << " outload "
     << netlist.outputLoadCap() << "\n";
  for (int i = 0; i < netlist.nodeCount(); ++i) {
    const auto& n = netlist.node(i);
    if (n.kind == Netlist::NodeKind::PrimaryInput) {
      os << "input " << i << "\n";
    } else {
      os << "gate " << i << ' ' << functionToken(n.cell.function) << " drive "
         << n.cell.drive << " vth "
         << (n.cell.vth == VthClass::Low ? "low" : "high") << " vdd "
         << (n.cell.vddDomain == VddDomain::High ? "high" : "low")
         << " fanins";
      for (int f : n.fanins) os << ' ' << f;
      os << "\n";
    }
  }
  for (int out : netlist.outputs()) os << "output " << out << "\n";
}

Netlist readNetlist(std::istream& is, const Library& library) {
  std::string lineText;
  int lineNo = 0;
  bool haveHeader = false;
  Netlist netlist;
  std::map<int, int> idMap;  // file id -> in-memory id

  while (std::getline(is, lineText)) {
    ++lineNo;
    std::istringstream line(lineText);
    std::string keyword;
    if (!(line >> keyword) || keyword[0] == '#') continue;

    if (keyword == "netlist") {
      std::string wirecapKw, outloadKw;
      double wirecap = 0.0, outload = 0.0;
      if (!(line >> wirecapKw >> wirecap >> outloadKw >> outload) ||
          wirecapKw != "wirecap" || outloadKw != "outload") {
        fail(lineNo, "malformed header");
      }
      netlist = Netlist(wirecap, outload);
      haveHeader = true;
    } else if (keyword == "input") {
      if (!haveHeader) fail(lineNo, "input before header");
      int id = -1;
      if (!(line >> id)) fail(lineNo, "malformed input");
      idMap[id] = netlist.addInput();
    } else if (keyword == "gate") {
      if (!haveHeader) fail(lineNo, "gate before header");
      int id = -1;
      std::string fnToken, driveKw, vthKw, vthVal, vddKw, vddVal, faninsKw;
      double drive = 0.0;
      if (!(line >> id >> fnToken >> driveKw >> drive >> vthKw >> vthVal >>
            vddKw >> vddVal >> faninsKw) ||
          driveKw != "drive" || vthKw != "vth" || vddKw != "vdd" ||
          faninsKw != "fanins") {
        fail(lineNo, "malformed gate");
      }
      const CellFunction fn = parseFunction(fnToken, lineNo);
      const VthClass vth = vthVal == "low" ? VthClass::Low : VthClass::High;
      const VddDomain dom =
          vddVal == "high" ? VddDomain::High : VddDomain::Low;
      std::vector<int> fanins;
      int f = -1;
      while (line >> f) {
        const auto it = idMap.find(f);
        if (it == idMap.end()) fail(lineNo, "fanin references unknown id");
        fanins.push_back(it->second);
      }
      const Cell cell = library.generateCustom(fn, drive, vth, dom);
      idMap[id] = netlist.addGate(cell, std::move(fanins));
    } else if (keyword == "output") {
      int id = -1;
      if (!(line >> id)) fail(lineNo, "malformed output");
      const auto it = idMap.find(id);
      if (it == idMap.end()) fail(lineNo, "output references unknown id");
      netlist.markOutput(it->second);
    } else {
      fail(lineNo, "unknown keyword '" + keyword + "'");
    }
  }
  if (!haveHeader) throw std::runtime_error("netlist parse: empty input");
  netlist.validate();
  return netlist;
}

}  // namespace nano::circuit
