// nano::exec — a small fixed-size thread pool with fork/join parallel
// loops for the embarrassingly parallel outer layers of the library:
// design-space sweeps, roadmap figure generation, per-node analysis, and
// row-blocked sparse matrix-vector products. Like obs, any layer may
// include it.
//
// Guarantees:
//  - Deterministic results: parallelMap writes slot i of the output from
//    item i only, so results are identical for any thread count (including
//    NANO_EXEC_THREADS=1). Bodies must not share mutable state across
//    indices; everything this library submits follows that rule.
//  - Exception propagation: the first exception thrown by a body is
//    rethrown on the calling thread after the region drains; remaining
//    unclaimed chunks are cancelled.
//  - Nested calls run inline (serially) on the calling thread, so bodies
//    may themselves call into parallel code without deadlocking.
//
// Sizing: the process-wide pool reads NANO_EXEC_THREADS once on first use
// (falling back to std::thread::hardware_concurrency). A pool of size N
// runs N-1 workers; the calling thread is always the Nth lane.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace nano::exec {

/// Fixed-size fork/join worker pool. One parallel region runs at a time
/// per pool; regions are chunk-self-scheduled over an atomic cursor, so
/// imbalanced bodies still load-balance.
class ThreadPool {
 public:
  /// A pool of `threads` lanes total (calling thread included), so
  /// ThreadPool(1) spawns no workers and runs every region serially.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Lanes available to a region (workers + the calling thread).
  [[nodiscard]] int threadCount() const {
    return static_cast<int>(workers_.size()) + 1;
  }

  /// Run body(i) for every i in [0, n). Blocks until all items finish;
  /// rethrows the first body exception. `grain` items are claimed per
  /// scheduling step (0 = auto: ~4 chunks per lane).
  void parallelFor(std::size_t n, const std::function<void(std::size_t)>& body,
                   std::size_t grain = 0);

  /// Range-blocked variant for cheap bodies: body(begin, end) owns the
  /// half-open index range. Avoids one indirect call per item.
  void parallelForBlocked(
      std::size_t n, const std::function<void(std::size_t, std::size_t)>& body,
      std::size_t grain = 0);

 private:
  struct Job;

  void workerLoop();
  void runChunks(Job& job, bool isWorker);

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  Job* job_ = nullptr;        ///< active region, guarded by mutex_
  std::uint64_t jobSeq_ = 0;  ///< bumps per region so workers re-arm
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Thread count the global pool uses: NANO_EXEC_THREADS if set (clamped to
/// [1, 256]), else hardware concurrency, else 1.
int defaultThreadCount();

/// The process-wide pool, created on first use with defaultThreadCount().
ThreadPool& pool();

/// Replace the global pool with one of `threads` lanes. For tests and
/// benchmarks; must not race with in-flight global parallel regions.
void setGlobalThreadCount(int threads);

/// Lanes of the global pool.
int threadCount();

/// parallelFor / parallelForBlocked on the global pool.
void parallelFor(std::size_t n, const std::function<void(std::size_t)>& body,
                 std::size_t grain = 0);
void parallelForBlocked(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t grain = 0);

/// Map i -> fn(i) into a pre-sized vector. Slot i is written only by item
/// i, so the result is identical for any thread count.
template <typename T, typename Fn>
std::vector<T> parallelMap(std::size_t n, Fn&& fn, std::size_t grain = 0) {
  std::vector<T> out(n);
  parallelFor(
      n, [&](std::size_t i) { out[i] = fn(i); }, grain);
  return out;
}

}  // namespace nano::exec
