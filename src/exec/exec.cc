#include "exec/exec.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>

#include "obs/obs.h"

namespace nano::exec {

namespace {

/// True while this thread executes region chunks; nested regions run
/// inline so a body may call parallel code without deadlocking on the
/// pool's single job slot.
thread_local bool tlsInsideRegion = false;

}  // namespace

/// One parallel region. Lives on the caller's stack; workers only touch it
/// between registering (++active) and deregistering (--active) under the
/// pool mutex, and the caller does not return before active == 0.
struct ThreadPool::Job {
  std::size_t n = 0;
  std::size_t grain = 1;
  obs::TraceContext trace;  ///< caller's context, reinstalled on workers
  const std::function<void(std::size_t, std::size_t)>* body = nullptr;
  std::atomic<std::size_t> next{0};      ///< item-claim cursor
  std::atomic<bool> cancelled{false};    ///< set on first exception
  std::atomic<std::int64_t> chunks{0};   ///< chunks executed (all lanes)
  std::atomic<std::int64_t> steals{0};   ///< chunks executed by workers
  int active = 0;                        ///< workers in-region (pool mutex)
  std::exception_ptr error;              ///< first exception (pool mutex)
};

ThreadPool::ThreadPool(int threads) {
  const int workers = std::max(1, threads) - 1;
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::workerLoop() {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lk(mutex_);
  for (;;) {
    cv_.wait(lk, [&] { return stop_ || jobSeq_ != seen; });
    if (stop_) return;
    seen = jobSeq_;
    Job* job = job_;
    if (job == nullptr) continue;  // woke after the region already drained
    ++job->active;
    lk.unlock();
    tlsInsideRegion = true;
    {
      // Bridge the submitting request's identity onto this worker so
      // anything the body records is attributed to the right trace.
      const obs::TraceContextScope scope(job->trace);
      runChunks(*job, /*isWorker=*/true);
    }
    tlsInsideRegion = false;
    lk.lock();
    if (--job->active == 0) cv_.notify_all();
  }
}

void ThreadPool::runChunks(Job& job, bool isWorker) {
  // One synchronous span per lane per region: every 'B' here gets its
  // matching 'E' on the same thread even when a body throws.
  const obs::TraceSpan span("exec", isWorker ? "region.worker" : "region",
                            job.trace);
  for (;;) {
    if (job.cancelled.load(std::memory_order_relaxed)) return;
    const std::size_t begin =
        job.next.fetch_add(job.grain, std::memory_order_relaxed);
    if (begin >= job.n) return;
    const std::size_t end = std::min(begin + job.grain, job.n);
    try {
      (*job.body)(begin, end);
    } catch (...) {
      std::lock_guard<std::mutex> lk(mutex_);
      if (!job.error) job.error = std::current_exception();
      job.cancelled.store(true, std::memory_order_relaxed);
    }
    job.chunks.fetch_add(1, std::memory_order_relaxed);
    if (isWorker) job.steals.fetch_add(1, std::memory_order_relaxed);
  }
}

void ThreadPool::parallelForBlocked(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t grain) {
  if (n == 0) return;
  if (grain == 0) {
    // ~4 chunks per lane: slack for load balancing without drowning cheap
    // bodies in scheduling steps.
    grain = std::max<std::size_t>(
        1, n / (static_cast<std::size_t>(threadCount()) * 4));
  }
  // Serial fast paths: single-lane pool, a region too small to split, or a
  // nested call from inside a running region.
  if (workers_.empty() || tlsInsideRegion || n <= grain) {
    body(0, n);
    return;
  }

  Job job;
  job.n = n;
  job.grain = grain;
  job.trace = obs::currentTraceContext();
  job.body = &body;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    job_ = &job;
    ++jobSeq_;
  }
  cv_.notify_all();
  tlsInsideRegion = true;
  runChunks(job, /*isWorker=*/false);
  tlsInsideRegion = false;
  {
    std::unique_lock<std::mutex> lk(mutex_);
    cv_.wait(lk, [&] { return job.active == 0; });
    job_ = nullptr;  // workers check job_ under the mutex before registering
  }
  NANO_OBS_COUNT("exec/parallel_regions", 1);
  NANO_OBS_COUNT("exec/tasks", job.chunks.load(std::memory_order_relaxed));
  NANO_OBS_COUNT("exec/steals", job.steals.load(std::memory_order_relaxed));
  if (job.error) std::rethrow_exception(job.error);
}

void ThreadPool::parallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& body,
                             std::size_t grain) {
  parallelForBlocked(
      n,
      [&body](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) body(i);
      },
      grain);
}

int defaultThreadCount() {
  if (const char* env = std::getenv("NANO_EXEC_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && v >= 1) return static_cast<int>(std::min(v, 256L));
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 ? static_cast<int>(hw) : 1;
}

namespace {

std::mutex& globalPoolMutex() {
  static std::mutex m;
  return m;
}

std::unique_ptr<ThreadPool>& globalPoolSlot() {
  static std::unique_ptr<ThreadPool> slot;
  return slot;
}

}  // namespace

ThreadPool& pool() {
  std::lock_guard<std::mutex> lk(globalPoolMutex());
  auto& slot = globalPoolSlot();
  if (!slot) slot = std::make_unique<ThreadPool>(defaultThreadCount());
  return *slot;
}

void setGlobalThreadCount(int threads) {
  std::lock_guard<std::mutex> lk(globalPoolMutex());
  globalPoolSlot() = std::make_unique<ThreadPool>(threads);
}

int threadCount() { return pool().threadCount(); }

void parallelFor(std::size_t n, const std::function<void(std::size_t)>& body,
                 std::size_t grain) {
  pool().parallelFor(n, body, grain);
}

void parallelForBlocked(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t grain) {
  pool().parallelForBlocked(n, body, grain);
}

}  // namespace nano::exec
