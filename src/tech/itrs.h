// ITRS 2000-update roadmap database for the six technology nodes the paper
// analyzes (180, 130, 100, 70, 50, 35 nm). Each TechNode bundles the
// device, wiring, packaging, and system-level parameters the paper's models
// consume. Values follow the ITRS 2000 update and the figures quoted in the
// paper itself (e.g. the 35 nm MPU draws 300 A peak => 180 W at 0.6 V; 4416
// bumps on the 35 nm die => 356 um effective bump pitch).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace nano::tech {

/// One ITRS technology node. All values SI (see util/units.h); per-width
/// values in A/m (== uA/um) and ohm*m (== ohm*um * 1e-6).
struct TechNode {
  int featureNm = 0;       ///< drawn feature size, nm (node name)
  int year = 0;            ///< ITRS production year

  // Supply / device.
  double vdd = 0.0;            ///< nominal supply, V
  double vddAlternative = 0.0; ///< alternative supply studied by the paper (0 if none)
  double toxPhysical = 0.0;    ///< physical gate-oxide thickness, m
  double leff = 0.0;           ///< effective (as-etched) gate length, m
  double ionTarget = 0.0;      ///< NMOS drive-current target, A/m (750 uA/um)
  double ioffItrs = 0.0;       ///< ITRS off-current projection, A/m
  double rsSourceOhmM = 0.0;   ///< parasitic source resistance * width, ohm*m
  double dibl = 0.0;           ///< DIBL coefficient, V of Vth shift per V of Vds
  double subthresholdSwing = 0.0;  ///< V/decade at 300 K (paper assumes 85 mV)
  /// Linearized body effect: Vth increase per volt of reverse body bias.
  /// Shrinks with scaling (paper Section 3.2.1: "body bias is less
  /// effective at controlling Vth in scaled devices").
  double bodyEffect = 0.0;

  // System.
  double clockLocal = 0.0;   ///< on-chip local clock, Hz
  double clockGlobal = 0.0;  ///< across-chip (global) clock, Hz
  double dieArea = 0.0;      ///< high-performance MPU die area, m^2
  double maxPower = 0.0;     ///< max total power, W
  double tjMax = 0.0;        ///< max junction temperature, K
  double tAmbient = 0.0;     ///< assumed ambient, K
  std::int64_t logicTransistors = 0;  ///< logic transistor count

  // Wiring (top / global tier).
  double globalWirePitch = 0.0;      ///< minimum top-level metal pitch, m
  double globalAspectRatio = 0.0;    ///< thickness / width of top metal
  double metalResistivity = 0.0;     ///< effective Cu resistivity (incl. barrier), ohm*m
  double ildPermittivity = 0.0;      ///< relative dielectric constant of ILD
  int wiringLevels = 0;

  // Local wiring, used for the "average interconnect load" of Figure 1.
  double localWireCapPerM = 0.0;     ///< F/m of a typical local wire
  double avgLocalWireLength = 0.0;   ///< m, average local net length

  // Packaging.
  double minBumpPitch = 0.0;   ///< minimum manufacturable area-array bump pitch, m
  int itrsPadCount = 0;        ///< total pads/bumps the ITRS projects will be used
  int itrsVddPads = 0;         ///< of which Vdd bumps
  double bumpCurrentLimit = 0.0;  ///< max sustained current per bump, A

  // Derived helpers -------------------------------------------------------

  /// Minimum top-level wire width (pitch assumed = 2x width).
  [[nodiscard]] double minGlobalWireWidth() const { return 0.5 * globalWirePitch; }
  /// Top-level metal thickness.
  [[nodiscard]] double globalWireThickness() const {
    return globalAspectRatio * minGlobalWireWidth();
  }
  /// Uniform power density, W/m^2.
  [[nodiscard]] double powerDensity() const { return maxPower / dieArea; }
  /// Total supply current at nominal Vdd, A.
  [[nodiscard]] double supplyCurrent() const { return maxPower / vdd; }
  /// Effective bump pitch implied by the ITRS pad count on this die, m.
  [[nodiscard]] double itrsEffectiveBumpPitch() const;
  /// Junction-to-ambient thermal resistance required to hold tjMax, K/W.
  [[nodiscard]] double requiredThetaJa() const {
    return (tjMax - tAmbient) / maxPower;
  }
};

/// All six nodes in scaling order 180 -> 35 nm.
const std::vector<TechNode>& roadmap();

/// Look up a node by feature size in nm; throws std::out_of_range for
/// feature sizes not on the roadmap.
const TechNode& nodeByFeature(int featureNm);

/// Feature sizes on the roadmap, in scaling order.
std::array<int, 6> roadmapFeatures();

}  // namespace nano::tech
