#include "tech/literature.h"

namespace nano::tech {

const std::vector<PublishedDevice>& table1Devices() {
  static const std::vector<PublishedDevice> kTable1 = [] {
    std::vector<PublishedDevice> v;
    auto add = [&v](std::string ref, std::string node, int nodeNm, double tox,
                    ToxKind kind, double vdd, double ion, double ioff,
                    bool itrs) {
      v.push_back(PublishedDevice{std::move(ref), std::move(node), nodeNm, tox,
                                  kind, vdd, ion, ioff, itrs});
    };
    // Published results (paper Table 1, top block).
    add("[24] Chau et al., IEDM 2000", "50-70", 60, 18.0, ToxKind::Electrical,
        0.85, 514.0, 100.0, false);
    add("[25] Song et al., IEDM 2000", "100", 100, 21.0, ToxKind::Electrical,
        1.2, 860.0, 10.0, false);
    add("[26] Wakabayashi et al., IEDM 2000", "70", 70, 25.0,
        ToxKind::Electrical, 1.2, 697.0, 10.0, false);
    add("[27] Mehrotra et al., IEDM 1999", "100", 100, 27.0,
        ToxKind::Electrical, 1.2, 800.0, 10.0, false);
    add("[28] Yang et al., IEDM 1999", "70", 70, 32.0, ToxKind::Electrical,
        1.2, 650.0, 3.0, false);
    add("[29] Ono et al., VLSI 2000", "100", 100, 13.0, ToxKind::Physical, 1.0,
        723.0, 16.0, false);
    // ITRS projection rows (paper Table 1, bottom block).
    add("ITRS", "100", 100, 13.5, ToxKind::Physical, 1.2, 750.0, 13.0, true);
    add("ITRS", "70", 70, 10.0, ToxKind::Physical, 0.9, 750.0, 40.0, true);
    add("ITRS", "50", 50, 7.0, ToxKind::Physical, 0.6, 750.0, 80.0, true);
    return v;
  }();
  return kTable1;
}

const std::vector<DualVthDataPoint>& figure2DataPoints() {
  static const std::vector<DualVthDataPoint> kPoints = {
      // [21] Akrout et al., 0.12 um Leff (130 nm node class) RISC MPU:
      // low-Vth devices gave ~12 % drive improvement.
      {"[21] Akrout et al., JSSC 1998", 130, 12.0},
      // [40] Tyagi et al., 130 nm logic with dual-Vt: ~14 % Ion step between
      // the high- and low-Vt flavors (~100 mV apart).
      {"[40] Tyagi et al., IEDM 2000", 130, 14.0},
  };
  return kPoints;
}

double historicalIonUnderestimate() { return 0.20; }

}  // namespace nano::tech
