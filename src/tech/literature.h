// Published advanced-CMOS device results from the paper's Table 1, kept as
// a small citable database so Figure 2's "published data points" and the
// Table 1 bench can cross-reference model predictions against measurements.
#pragma once

#include <string>
#include <vector>

namespace nano::tech {

/// Whether the reported oxide thickness is the physical film thickness or
/// the electrically effective (inversion) thickness.
enum class ToxKind { Electrical, Physical };

/// One published NMOS data point (or an ITRS projection row).
struct PublishedDevice {
  std::string reference;   ///< paper citation key, e.g. "[24] Chau IEDM'00"
  std::string itrsNode;    ///< node label as printed, e.g. "50-70"
  int nodeNm = 0;          ///< representative node in nm (for sorting/plots)
  double toxAngstrom = 0;  ///< reported oxide thickness, Angstrom
  ToxKind toxKind = ToxKind::Electrical;
  double vdd = 0;          ///< reported supply, V
  double ionUaPerUm = 0;   ///< reported NMOS on-current, uA/um
  double ioffNaPerUm = 0;  ///< reported off-current, nA/um
  bool isItrsProjection = false;
};

/// Table 1 rows, in the paper's order: six published results then three
/// ITRS projection rows (100/70/50 nm).
const std::vector<PublishedDevice>& table1Devices();

/// Figure 2's published dual-Vth validation points: (node nm, Ion gain in %
/// for a 100 mV Vth reduction) extracted from [21] (0.12 um Leff RISC MPU)
/// and [40] (Intel 130 nm dual-Vt logic technology).
struct DualVthDataPoint {
  std::string reference;
  int nodeNm = 0;
  double ionGainPercent = 0.0;
};
const std::vector<DualVthDataPoint>& figure2DataPoints();

/// Historical pre-production -> production Ion improvement factor observed
/// in [30,31] (reports tend to underestimate production Ion by ~20 %).
double historicalIonUnderestimate();

}  // namespace nano::tech
