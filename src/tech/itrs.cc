#include "tech/itrs.h"

#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "obs/obs.h"
#include "util/units.h"

namespace nano::tech {

using namespace nano::units;

namespace {

TechNode makeNode(int featureNm, int year, double vdd, double vddAlt,
                  double toxAngstrom, double leffNm, double ioffItrsNaUm,
                  double diblVperV, double clockLocalGhz, double dieAreaMm2,
                  double maxPowerW, double tjMaxC, std::int64_t logicMTx,
                  double globalPitchUm, double ildK, int levels,
                  double avgLocalWireUm, double minBumpPitchUm, int padCount,
                  int vddPads) {
  TechNode n;
  n.featureNm = featureNm;
  n.year = year;
  n.vdd = vdd;
  n.vddAlternative = vddAlt;
  n.toxPhysical = toxAngstrom * angstrom;
  n.leff = leffNm * nm;
  n.ionTarget = 750.0 * uA_per_um;
  n.ioffItrs = ioffItrsNaUm * nA_per_um;
  // ITRS parasitic source/drain series resistance target: ~180 ohm-um held
  // roughly flat across the roadmap.
  n.rsSourceOhmM = 180.0 * ohm_um;
  n.dibl = diblVperV;
  n.subthresholdSwing = 85.0 * mV;  // paper's Eq. (4) assumption at 300 K
  // Body effect weakens as channel doping profiles and junction depths
  // scale: ~0.22 V/V at 180 nm down to ~0.06 V/V at 35 nm.
  n.bodyEffect = 0.22 * std::pow(static_cast<double>(featureNm) / 180.0, 0.8);
  n.clockLocal = clockLocalGhz * GHz;
  // The paper (Section 2.2) argues global signaling runs slower than local
  // datapaths; we carry the ITRS across-chip clock as half the local clock.
  n.clockGlobal = 0.5 * n.clockLocal;
  n.dieArea = dieAreaMm2 * mm2;
  n.maxPower = maxPowerW;
  n.tjMax = fromCelsius(tjMaxC);
  n.tAmbient = fromCelsius(45.0);  // paper: Tambient ~ 45 C
  n.logicTransistors = logicMTx * 1'000'000;
  n.globalWirePitch = globalPitchUm * um;
  n.globalAspectRatio = 2.0;
  // Cu with barrier/liner overhead (bulk 1.7 uohm-cm, effective ~2.2).
  n.metalResistivity = 2.2e-8;
  n.ildPermittivity = ildK;
  n.wiringLevels = levels;
  // Local-wire capacitance stays near 0.2 fF/um across nodes (fringe
  // dominated); average local net length shrinks with the feature size.
  n.localWireCapPerM = 0.2 * fF_per_um;
  n.avgLocalWireLength = avgLocalWireUm * um;
  n.minBumpPitch = minBumpPitchUm * um;
  n.itrsPadCount = padCount;
  n.itrsVddPads = vddPads;
  // ITRS bump current-carrying capability, ~0.15 A/bump sustained.
  n.bumpCurrentLimit = 0.15;
  return n;
}

std::vector<TechNode> buildRoadmap() {
  std::vector<TechNode> nodes;
  //                 node year  Vdd  alt  Tox  Leff Ioff  DIBL  fGHz  die   P    Tj   Mtx   gPit  k    lvl  lwire bump  pads  vddPads
  nodes.push_back(makeNode(180, 1999, 1.8, 0.0, 25.0, 140.0, 7.0, 0.020, 1.25, 340.0, 90.0, 100.0, 24,   1.20, 3.5, 7,  45.0, 250.0, 1700, 580));
  nodes.push_back(makeNode(130, 2002, 1.5, 0.0, 19.0, 90.0, 10.0, 0.030, 2.10, 385.0, 130.0, 85.0, 55,   1.00, 3.2, 8,  34.0, 180.0, 2100, 715));
  nodes.push_back(makeNode(100, 2005, 1.2, 0.0, 15.0, 65.0, 16.0, 0.045, 3.50, 430.0, 160.0, 85.0, 130,  0.80, 2.8, 9,  27.0, 140.0, 2600, 885));
  nodes.push_back(makeNode(70, 2008, 0.9, 0.0, 12.0, 45.0, 40.0, 0.060, 6.00, 465.0, 170.0, 85.0, 300,  0.65, 2.4, 9,  19.0, 110.0, 3200, 1090));
  nodes.push_back(makeNode(50, 2011, 0.6, 0.7, 8.0, 32.0, 80.0, 0.080, 10.0, 487.0, 175.0, 85.0, 700,  0.50, 2.1, 10, 14.0, 90.0, 3800, 1290));
  nodes.push_back(makeNode(35, 2014, 0.6, 0.0, 6.0, 22.0, 160.0, 0.090, 13.5, 560.0, 180.0, 85.0, 1600, 0.40, 1.9, 10, 10.0, 80.0, 4416, 1500));
  return nodes;
}

}  // namespace

double TechNode::itrsEffectiveBumpPitch() const {
  // Pads spread uniformly over the die => pitch = sqrt(area per pad).
  return std::sqrt(dieArea / static_cast<double>(itrsPadCount));
}

const std::vector<TechNode>& roadmap() {
  static const std::vector<TechNode> kRoadmap = buildRoadmap();
  return kRoadmap;
}

const TechNode& nodeByFeature(int featureNm) {
  // Sweeps and the svc evaluation layer look the same handful of nodes up
  // millions of times; an immutable feature->node index built once beats
  // re-scanning the table on every query. The map is initialized under the
  // static-local guard and never mutated after, so lookups are lock-free
  // and thread-safe.
  static const std::unordered_map<int, const TechNode*> kByFeature = [] {
    std::unordered_map<int, const TechNode*> index;
    for (const TechNode& n : roadmap()) index.emplace(n.featureNm, &n);
    return index;
  }();
  const auto it = kByFeature.find(featureNm);
  if (it == kByFeature.end()) {
    throw std::out_of_range("nodeByFeature: not on roadmap: " +
                            std::to_string(featureNm) + " nm");
  }
  NANO_OBS_COUNT("tech/node_lookup_reuses", 1);
  return *it->second;
}

std::array<int, 6> roadmapFeatures() { return {180, 130, 100, 70, 50, 35}; }

}  // namespace nano::tech
