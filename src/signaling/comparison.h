// Side-by-side comparison of global signaling strategies for a cross-chip
// link: conventional full-swing repeated CMOS vs. low-swing differential
// (paper Section 2.2, Alpha 21264 reference design).
#pragma once

#include <string>
#include <vector>

#include "signaling/lowswing.h"
#include "signaling/noise.h"
#include "tech/itrs.h"

namespace nano::signaling {

/// One strategy's scorecard for a given link.
struct StrategyScore {
  std::string name;
  LinkReport link;
  NoiseReport noise;
  double powerAtGlobalClock = 0.0;  ///< W at node global clock, activity 0.15
  double energyDelayProduct = 0.0;  ///< J*s
};

/// Compare strategies on a die-crossing link (or `length` if given).
/// Returns scores for: full-swing repeated, low-swing single-ended,
/// low-swing differential (shielded).
std::vector<StrategyScore> compareStrategies(const tech::TechNode& node,
                                             double length = -1.0,
                                             double activity = 0.15);

/// Bus-level rollup: power of an n-bit cross-chip bus under each strategy,
/// plus peak current (the di/dt driver for the power grid); reproduces the
/// Alpha-style "worst-case power reduced significantly by limiting the
/// swing to 10 % of Vdd" observation.
struct BusComparison {
  StrategyScore fullSwing;
  StrategyScore lowSwingDifferential;
  double powerRatio = 0.0;        ///< full-swing / low-swing
  double peakCurrentRatio = 0.0;  ///< full-swing / low-swing
  double trackRatio = 0.0;        ///< low-swing / full-swing routing tracks
};
BusComparison compareBus(const tech::TechNode& node, int bits, double length,
                         double activity = 0.25);

}  // namespace nano::signaling
