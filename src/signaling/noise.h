// Signal-integrity estimates for global signaling (paper Section 2.2):
// capacitive crosstalk, inductive coupling, and the common-mode rejection
// advantage of differential links.
#pragma once

#include "interconnect/wire.h"

namespace nano::signaling {

/// Crosstalk/noise figures for a victim wire, in volts.
struct NoiseReport {
  double capacitiveNoise = 0.0;  ///< peak coupled noise from neighbors, V
  double inductiveNoise = 0.0;   ///< L*di/dt noise over the line, V
  double totalNoise = 0.0;       ///< combined (sum), V
  double noiseMargin = 0.0;      ///< receiver margin minus noise, V
  [[nodiscard]] bool passes() const { return noiseMargin > 0.0; }
};

/// Parameters of a noise scenario.
struct NoiseScenario {
  double aggressorSwing = 1.0;     ///< V, voltage step on each neighbor
  double victimSwing = 1.0;        ///< V, the signal swing being detected
  double receiverThresholdFraction = 0.5;  ///< trip point as fraction of swing
  /// Residual sensitivity of the receiver to common-mode noise: 1.0 for a
  /// single-ended receiver, ~0.1 for a differential pair (mismatch floor).
  double commonModeRejection = 1.0;
  bool shielded = false;           ///< grounded shield between aggressors
  double length = 1e-3;            ///< m, coupled length
  double loopInductancePerM = 4e-7;///< H/m effective loop inductance
  double aggressorEdgeRate = 5e10; ///< V/s (dV/dt of the aggressor)
};

/// Estimate coupled noise on a victim of per-length parasitics `rc`.
/// Capacitive noise uses the charge-divider peak Ccouple/Ctotal * swing;
/// shields cut coupling ~5x. Inductive noise is M * dI/dt with the
/// aggressor current inferred from its capacitive load; shields help less
/// against inductive coupling (~2x), which is why the paper argues for
/// differential signaling on long lines.
NoiseReport estimateNoise(const interconnect::WireRc& rc,
                          const NoiseScenario& scenario);

}  // namespace nano::signaling
