#include "signaling/lowswing.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "device/gate_model.h"

namespace nano::signaling {

namespace {
// Sense-amplifier bias current when idle (clocked sense amps draw little;
// this covers the keeper/preamp), A.
constexpr double kSenseAmpBias = 2e-6;
// Wire-diffusion coefficient to a low (~10 % of final) threshold at the far
// end of a distributed RC line: much smaller than the 0.377 needed for the
// 50 % point.
constexpr double kLowThresholdDiffusion = 0.2;
// Number of repeater stages along a full-swing line that draw their peak
// current simultaneously as an edge propagates.
constexpr double kSimultaneousStages = 2.0;
}  // namespace

LinkReport analyzeLowSwingLink(const tech::TechNode& node,
                               const interconnect::WireRc& rc, double length,
                               const LowSwingConfig& config) {
  if (length <= 0) throw std::invalid_argument("analyzeLowSwingLink: length");
  if (config.swingFraction <= 0 || config.swingFraction > 1.0) {
    throw std::invalid_argument("analyzeLowSwingLink: swingFraction");
  }
  const auto driver = interconnect::RepeaterDriver::fromNode(node);
  const double vth = device::solveVthForIon(node, node.ionTarget);
  const device::InverterModel refInv(node, vth, node.vdd);

  LinkReport rep;
  const double vswing = config.swingFraction * node.vdd;
  const double cWire = rc.totalCapPerM() * length;
  const double rWire = rc.resistancePerM * length;

  // Driver behaves as a (saturated) current source until the line reaches
  // the clamped swing; the receiver fires at half swing.
  const double idrv = 0.5 * node.vdd / (driver.unitResistance / config.driverSize);
  const double chargeTime = cWire * (0.5 * vswing) / idrv;
  const double diffusionTime = kLowThresholdDiffusion * rWire * cWire;
  const double senseDelay = config.receiverDelayFo4 * refInv.fo4Delay();
  rep.delay = chargeTime + diffusionTime + senseDelay;

  // Per transition: one wire of the (differential) pair slews by Vswing,
  // charge drawn from the full supply; plus the sense-amp regeneration.
  const double receiverEnergy =
      config.receiverEnergyFactor * refInv.switchingEnergy(refInv.inputCap());
  rep.energyPerTransition = cWire * vswing * node.vdd + receiverEnergy;

  rep.peakSupplyCurrent = idrv;
  // Tracks: signal (+complement) (+ shared shield when shielded).
  rep.routingTracks = config.differential ? (config.shielded ? 3.0 : 2.0)
                                          : (config.shielded ? 2.0 : 1.0);
  rep.staticPower = kSenseAmpBias * node.vdd +
                    config.driverSize * driver.unitLeakage;
  return rep;
}

LinkReport analyzeFullSwingLink(const tech::TechNode& node,
                                const interconnect::WireRc& rc, double length) {
  if (length <= 0) throw std::invalid_argument("analyzeFullSwingLink: length");
  const auto driver = interconnect::RepeaterDriver::fromNode(node);
  const auto design = interconnect::optimalRepeatersNumeric(driver, rc);

  LinkReport rep;
  rep.delay = interconnect::repeatedLineDelay(driver, rc, design, length);

  const double nRep = interconnect::repeaterCountForLength(design, length);
  const double cWire = rc.totalCapPerM() * length;
  const double cRep =
      nRep * design.size * (driver.unitInputCap + driver.unitOutputCap);
  rep.energyPerTransition = (cWire + cRep) * node.vdd * node.vdd;

  // As the edge flies down the line a couple of stages conduct their peak
  // simultaneously.
  const double stagePeak = 0.5 * node.vdd / (driver.unitResistance / design.size);
  rep.peakSupplyCurrent = kSimultaneousStages * stagePeak;

  // The paper notes long full-swing lines need shielding against coupling
  // too: one shield per signal.
  rep.routingTracks = 2.0;
  rep.staticPower = nRep * design.size * driver.unitLeakage;
  return rep;
}

}  // namespace nano::signaling
