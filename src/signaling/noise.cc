#include "signaling/noise.h"

#include <algorithm>
#include <stdexcept>

namespace nano::signaling {

namespace {
constexpr double kShieldCapacitiveReduction = 5.0;
constexpr double kShieldInductiveReduction = 2.0;
// Mutual / self inductance ratio for adjacent same-layer wires.
constexpr double kMutualCouplingFactor = 0.6;
}  // namespace

NoiseReport estimateNoise(const interconnect::WireRc& rc,
                          const NoiseScenario& s) {
  if (s.length <= 0) throw std::invalid_argument("estimateNoise: length");
  NoiseReport rep;

  // Capacitive: both neighbors switching together, charge divider.
  const double ctotal = rc.totalCapPerM();
  double couple = 2.0 * rc.couplingCapPerM;
  if (s.shielded) couple /= kShieldCapacitiveReduction;
  const double capNoiseRaw = (couple / ctotal) * s.aggressorSwing;

  // Inductive: aggressor current ramp I = C * dV/dt over its length; the
  // victim sees M * dI/dt ~ M * C * d2V/dt2 ~ approximated with the edge
  // completing in (swing / edgeRate).
  const double edgeTime = s.aggressorSwing / s.aggressorEdgeRate;
  const double aggressorPeakCurrent =
      ctotal * s.length * s.aggressorEdgeRate;  // C * dV/dt
  double mutual = kMutualCouplingFactor * s.loopInductancePerM * s.length;
  if (s.shielded) mutual /= kShieldInductiveReduction;
  const double indNoiseRaw = mutual * aggressorPeakCurrent / edgeTime;

  // Differential receivers reject the common-mode part of both couplings.
  rep.capacitiveNoise = s.commonModeRejection * capNoiseRaw;
  rep.inductiveNoise = s.commonModeRejection * indNoiseRaw;
  rep.totalNoise = rep.capacitiveNoise + rep.inductiveNoise;
  rep.noiseMargin =
      s.receiverThresholdFraction * s.victimSwing - rep.totalNoise;
  return rep;
}

}  // namespace nano::signaling
