// Low-swing and differential global signaling models (paper Section 2.2):
// drivers that move long wires through only a fraction of Vdd, paired with
// sense-amplifier receivers — the Alpha 21264-style alternative to
// full-swing CMOS repeaters.
#pragma once

#include "interconnect/repeater.h"
#include "interconnect/wire.h"
#include "tech/itrs.h"

namespace nano::signaling {

/// Configuration of a low-swing link.
struct LowSwingConfig {
  double swingFraction = 0.10;  ///< Vswing / Vdd (Alpha 21264 used ~10 %)
  bool differential = true;     ///< two complementary wires + sense amp
  bool shielded = true;         ///< one grounded shield per signal (pair)
  double driverSize = 64.0;     ///< driver strength, multiples of unit inverter
  /// Sense-amp overhead per receive event, as a multiple of the energy a
  /// minimum inverter takes to switch (receiver preamp + regeneration).
  double receiverEnergyFactor = 25.0;
  /// Sense-amp resolution delay in FO4 units of the node.
  double receiverDelayFo4 = 2.0;
};

/// Electrical report for one link implementation over a given length.
struct LinkReport {
  double delay = 0.0;           ///< s, driver in to receiver out
  double energyPerTransition = 0.0;  ///< J drawn from the supply per event
  double peakSupplyCurrent = 0.0;    ///< A, worst instantaneous draw
  double routingTracks = 0.0;   ///< minimum-pitch track equivalents used
  double staticPower = 0.0;     ///< W (sense-amp bias + driver leakage)
  /// Average power at clock `freq` and activity `activity` (transitions
  /// per cycle).
  [[nodiscard]] double averagePower(double freq, double activity) const {
    return activity * energyPerTransition * freq + staticPower;
  }
};

/// Analyze a low-swing link of `length` on wire `rc` in `node`.
LinkReport analyzeLowSwingLink(const tech::TechNode& node,
                               const interconnect::WireRc& rc, double length,
                               const LowSwingConfig& config = {});

/// Analyze the conventional full-swing repeated link over the same wire,
/// using optimal repeaters; reported in the same LinkReport terms so the
/// two can be tabulated side by side.
LinkReport analyzeFullSwingLink(const tech::TechNode& node,
                                const interconnect::WireRc& rc, double length);

}  // namespace nano::signaling
