#include "signaling/mcml.h"

#include <stdexcept>

#include "device/gate_model.h"

namespace nano::signaling {

double McmlGate::delay() const {
  // R_load = swing / tailCurrent; first-order RC to the 50 % point.
  return 0.69 * (swing / tailCurrent) * loadCap;
}

double McmlGate::staticPower(double vdd) const { return vdd * tailCurrent; }

double McmlGate::switchingEnergy() const {
  // Both outputs slew by `swing` in opposite directions; the charge comes
  // from the constant tail current, already accounted in staticPower. The
  // incremental supply energy of a transition is ~ C * swing * swing (the
  // redistribution loss), small by construction.
  return loadCap * swing * swing;
}

double McmlGate::totalPower(double vdd, double freq, double activity) const {
  return staticPower(vdd) + activity * switchingEnergy() * freq;
}

MatchedPair buildMatchedPair(const tech::TechNode& node, double loadCap) {
  if (loadCap <= 0) throw std::invalid_argument("buildMatchedPair: loadCap");
  const double vth = device::solveVthForIon(node, node.ionTarget);
  const device::InverterModel inv(node, vth, node.vdd);

  MatchedPair pair;
  pair.cmos.delayS = inv.delay(loadCap);
  pair.cmos.switchingEnergyJ = inv.switchingEnergy(loadCap);
  pair.cmos.leakagePowerW = inv.leakagePower();
  pair.cmos.peakSupplyCurrentA = inv.driveCurrentN();

  pair.mcml.loadCap = loadCap;
  pair.mcml.swing = 0.4 * node.vdd;  // typical MCML swing
  // Match delay: 0.69 * (swing/I) * C == cmos delay.
  pair.mcml.tailCurrent = 0.69 * pair.mcml.swing * loadCap / pair.cmos.delayS;
  return pair;
}

double mcmlCrossoverActivity(const tech::TechNode& node, double loadCap) {
  const MatchedPair pair = buildMatchedPair(node, loadCap);
  const double freq = node.clockLocal;
  // Solve activity a where MCML total == CMOS total:
  //   Pmcml_static + a*Emcml*f == a*Ecmos*f + Pcmos_leak
  const double lhs = pair.mcml.staticPower(node.vdd) - pair.cmos.leakagePowerW;
  const double rhs =
      (pair.cmos.switchingEnergyJ - pair.mcml.switchingEnergy()) * freq;
  if (rhs <= 0) return 2.0;  // CMOS switching never catches up
  return lhs / rhs;
}

}  // namespace nano::signaling
