#include "signaling/comparison.h"

#include <cmath>

namespace nano::signaling {

namespace {

NoiseScenario scenarioFor(const tech::TechNode& node, double length,
                          double victimSwing, double commonModeRejection,
                          bool shielded) {
  NoiseScenario s;
  s.aggressorSwing = node.vdd;  // neighbors are full-swing signals
  s.victimSwing = victimSwing;
  s.receiverThresholdFraction = 0.5;
  s.commonModeRejection = commonModeRejection;
  s.shielded = shielded;
  s.length = std::min(length, 2e-3);  // coupled run length before a twist/jog
  s.aggressorEdgeRate = node.vdd / (50e-12);  // ~50 ps global edges
  return s;
}

StrategyScore score(std::string name, const tech::TechNode& node,
                    const LinkReport& link, const NoiseReport& noise,
                    double activity) {
  StrategyScore s;
  s.name = std::move(name);
  s.link = link;
  s.noise = noise;
  s.powerAtGlobalClock = link.averagePower(node.clockGlobal, activity);
  s.energyDelayProduct = link.energyPerTransition * link.delay;
  return s;
}

}  // namespace

std::vector<StrategyScore> compareStrategies(const tech::TechNode& node,
                                             double length, double activity) {
  if (length <= 0) length = std::sqrt(node.dieArea);  // die crossing
  const auto rc = interconnect::computeWireRc(interconnect::topLevelWire(node));

  std::vector<StrategyScore> out;

  // 1. Full-swing repeated CMOS (shielded long line).
  {
    const LinkReport link = analyzeFullSwingLink(node, rc, length);
    const NoiseReport noise = estimateNoise(
        rc, scenarioFor(node, length, node.vdd, 1.0, /*shielded=*/true));
    out.push_back(score("full-swing repeated", node, link, noise, activity));
  }
  // 2. Low-swing single-ended (shielded).
  {
    LowSwingConfig cfg;
    cfg.differential = false;
    cfg.shielded = true;
    const LinkReport link = analyzeLowSwingLink(node, rc, length, cfg);
    const double vswing = cfg.swingFraction * node.vdd;
    const NoiseReport noise = estimateNoise(
        rc, scenarioFor(node, length, vswing, 1.0, /*shielded=*/true));
    out.push_back(score("low-swing single-ended", node, link, noise, activity));
  }
  // 3. Low-swing differential (shielded): receiver rejects common mode.
  {
    LowSwingConfig cfg;
    cfg.differential = true;
    cfg.shielded = true;
    const LinkReport link = analyzeLowSwingLink(node, rc, length, cfg);
    const double vswing = cfg.swingFraction * node.vdd;
    const NoiseReport noise = estimateNoise(
        rc, scenarioFor(node, length, vswing, 0.1, /*shielded=*/true));
    out.push_back(score("low-swing differential", node, link, noise, activity));
  }
  return out;
}

BusComparison compareBus(const tech::TechNode& node, int bits, double length,
                         double activity) {
  const auto scores = compareStrategies(node, length, activity);
  BusComparison cmp;
  cmp.fullSwing = scores[0];
  cmp.lowSwingDifferential = scores[2];
  const double n = static_cast<double>(bits);
  cmp.fullSwing.powerAtGlobalClock *= n;
  cmp.fullSwing.link.peakSupplyCurrent *= n;
  cmp.lowSwingDifferential.powerAtGlobalClock *= n;
  cmp.lowSwingDifferential.link.peakSupplyCurrent *= n;
  cmp.powerRatio = cmp.fullSwing.powerAtGlobalClock /
                   cmp.lowSwingDifferential.powerAtGlobalClock;
  cmp.peakCurrentRatio = cmp.fullSwing.link.peakSupplyCurrent /
                         cmp.lowSwingDifferential.link.peakSupplyCurrent;
  cmp.trackRatio = cmp.lowSwingDifferential.link.routingTracks /
                   cmp.fullSwing.link.routingTracks;
  return cmp;
}

}  // namespace nano::signaling
