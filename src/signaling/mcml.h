// MOS current-mode logic (MCML) model, paper Section 4: a logic family
// that burns constant static current but produces almost no supply-current
// transients and can beat static CMOS on total power in high-activity
// datapaths (the paper cites Musicer & Rabaey [42]).
#pragma once

#include "tech/itrs.h"

namespace nano::signaling {

/// An MCML gate: differential pair steered by the inputs, load resistors
/// setting the swing, a tail current source setting speed.
struct McmlGate {
  double tailCurrent = 100e-6;  ///< A
  double swing = 0.3;           ///< V (I_tail * R_load)
  double loadCap = 5e-15;       ///< F per output (differential pair: two)

  /// Propagation delay ~ 0.69 * R_load * C = 0.69 * swing/I * C, s.
  [[nodiscard]] double delay() const;
  /// Static power: the tail conducts continuously, W at supply `vdd`.
  [[nodiscard]] double staticPower(double vdd) const;
  /// Dynamic energy per transition: the differential outputs exchange
  /// swing-sized charge, J.
  [[nodiscard]] double switchingEnergy() const;
  /// Total power at `freq`/`activity`, W.
  [[nodiscard]] double totalPower(double vdd, double freq, double activity) const;
  /// Peak-to-average supply current ratio (~1: constant current draw).
  [[nodiscard]] double supplyCurrentRipple() const { return 0.05; }
};

/// A static CMOS gate with the same load and comparable delay, for
/// comparison. Characterized from a roadmap node.
struct CmosEquivalent {
  double switchingEnergyJ = 0.0;
  double leakagePowerW = 0.0;
  double delayS = 0.0;
  double peakSupplyCurrentA = 0.0;
  [[nodiscard]] double totalPower(double freq, double activity) const {
    return activity * switchingEnergyJ * freq + leakagePowerW;
  }
};

/// Build a delay-matched (MCML, CMOS) pair driving `loadCap` in `node`.
/// The MCML tail current is sized so both gates have the same delay.
struct MatchedPair {
  McmlGate mcml;
  CmosEquivalent cmos;
};
MatchedPair buildMatchedPair(const tech::TechNode& node, double loadCap);

/// Activity factor above which the delay-matched MCML gate burns less total
/// power than its CMOS equivalent at the node's local clock; returns a
/// value > 1 if CMOS always wins, < 0 if MCML always wins (leaky CMOS).
double mcmlCrossoverActivity(const tech::TechNode& node, double loadCap);

}  // namespace nano::signaling
