// Level-converter insertion for multi-Vdd netlists: rebuilds a netlist
// with a converting stage on every low-Vdd -> high-Vdd crossing and on
// low-Vdd -> primary-output boundaries (conversion at the register, as in
// clustered voltage scaling).
#pragma once

#include "circuit/library.h"
#include "circuit/netlist.h"

namespace nano::opt {

/// Result of conversion insertion.
struct ConversionReport {
  circuit::Netlist netlist{0.0, 0.0};
  int convertersAdded = 0;
  /// Map from source node id to rebuilt node id.
  std::vector<int> nodeMap;
};

/// Rebuild `src` with level converters inserted. One converter is shared by
/// all high-domain sinks of a given low-domain driver. `convertAtOutputs`
/// adds a converter where a low-Vdd gate drives a primary output.
ConversionReport insertLevelConverters(const circuit::Netlist& src,
                                       const circuit::Library& library,
                                       bool convertAtOutputs = true);

}  // namespace nano::opt
