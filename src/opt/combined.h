// The paper's Section 3.3 "scalable dynamic/static power approach": chain
// multi-Vdd assignment (CVS), multi-Vth assignment, and re-sizing, in
// either order, and report the stage-by-stage power. Running sizing FIRST
// reproduces the paper's sub-optimality argument: downsizing consumes the
// slack that multi-Vdd would have exploited, and the quadratic (Vdd)
// saving beats the sub-linear (sizing) one.
#pragma once

#include <string>
#include <vector>

#include "opt/cvs.h"
#include "opt/dual_vth.h"
#include "opt/sizing.h"

namespace nano::opt {

/// Which optimizations to run, in order.
enum class FlowStage { MultiVdd, DualVth, Downsize };

struct FlowOptions {
  std::vector<FlowStage> stages = {FlowStage::MultiVdd, FlowStage::DualVth,
                                   FlowStage::Downsize};
  double clockPeriod = -1.0;
  double piActivity = 0.2;
  bool continuousSizes = false;
};

/// Power/timing after each stage.
struct FlowStageResult {
  std::string name;
  power::PowerBreakdown power;
  sta::TimingResult timing;
  double fractionLowVdd = 0.0;   ///< cumulative
  double fractionHighVth = 0.0;  ///< cumulative
  int gatesResized = 0;
};

struct FlowResult {
  circuit::Netlist netlist{0.0, 0.0};
  power::PowerBreakdown powerBefore;
  sta::TimingResult timingBefore;
  std::vector<FlowStageResult> stages;
  [[nodiscard]] double totalSavings() const {
    if (stages.empty()) return 0.0;
    return 1.0 - stages.back().power.total() / powerBefore.total();
  }
};

/// Run the staged flow on `netlist`.
FlowResult runFlow(const circuit::Netlist& netlist,
                   const circuit::Library& library,
                   const FlowOptions& options = {}, double freq = -1.0);

}  // namespace nano::opt
