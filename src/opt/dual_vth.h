// Dual-Vth assignment (paper Section 3.2.2, after [22,39]): start with an
// all-low-Vth implementation, then move every gate that can afford the
// delay increase to the high-Vth flavor, cutting its leakage ~15x (one
// 100 mV step at 85 mV/decade). Typical results in the literature — and
// the target for this implementation — are 40-80 % leakage reduction with
// essentially no critical-path penalty.
#pragma once

#include "circuit/library.h"
#include "circuit/netlist.h"
#include "power/power_model.h"
#include "sta/sta.h"

namespace nano::opt {

struct DualVthOptions {
  double clockPeriod = -1.0;  ///< <= 0: time against the circuit itself
  double guardband = 0.0;     ///< timing margin as a fraction of the clock
  double piActivity = 0.2;
};

struct DualVthResult {
  circuit::Netlist netlist{0.0, 0.0};
  double fractionHighVth = 0.0;
  power::PowerBreakdown powerBefore;
  power::PowerBreakdown powerAfter;
  sta::TimingResult timingBefore;
  sta::TimingResult timingAfter;
  [[nodiscard]] double leakageSavings() const {
    return 1.0 - powerAfter.leakage / powerBefore.leakage;
  }
  [[nodiscard]] double criticalPathPenalty() const {
    return timingAfter.criticalPathDelay / timingBefore.criticalPathDelay - 1.0;
  }
};

/// Assign high Vth to as many gates as timing allows, in order of
/// decreasing leakage-per-delay benefit.
DualVthResult runDualVth(const circuit::Netlist& netlist,
                         const circuit::Library& library,
                         const DualVthOptions& options = {}, double freq = -1.0);

}  // namespace nano::opt
