#include "opt/level_converter.h"

#include <stdexcept>

namespace nano::opt {

using circuit::CellFunction;
using circuit::Netlist;
using circuit::VddDomain;

ConversionReport insertLevelConverters(const Netlist& src,
                                       const circuit::Library& library,
                                       bool convertAtOutputs) {
  ConversionReport rep;
  rep.netlist = Netlist(src.wireCapPerFanout(), src.outputLoadCap());
  rep.nodeMap.assign(static_cast<std::size_t>(src.nodeCount()), -1);
  // Lazily created converter per low-domain driver (new-id space).
  std::vector<int> converterOf(static_cast<std::size_t>(src.nodeCount()), -1);

  auto isLowGate = [&](int id) {
    const auto& n = src.node(id);
    return n.kind == Netlist::NodeKind::Gate &&
           n.cell.vddDomain == VddDomain::Low &&
           n.cell.function != CellFunction::LevelConverter;
  };
  auto converterFor = [&](int srcId) {
    if (converterOf[static_cast<std::size_t>(srcId)] < 0) {
      const circuit::Cell lc = library.pick(CellFunction::LevelConverter, 1.0,
                                            circuit::VthClass::Low,
                                            VddDomain::High);
      const int mapped = rep.nodeMap[static_cast<std::size_t>(srcId)];
      converterOf[static_cast<std::size_t>(srcId)] =
          rep.netlist.addGate(lc, {mapped});
      ++rep.convertersAdded;
    }
    return converterOf[static_cast<std::size_t>(srcId)];
  };

  for (int i = 0; i < src.nodeCount(); ++i) {
    const auto& n = src.node(i);
    if (n.kind == Netlist::NodeKind::PrimaryInput) {
      rep.nodeMap[static_cast<std::size_t>(i)] = rep.netlist.addInput();
      continue;
    }
    const bool sinkIsHigh = n.cell.vddDomain == VddDomain::High;
    std::vector<int> fanins;
    fanins.reserve(n.fanins.size());
    for (int f : n.fanins) {
      const bool needsConversion =
          sinkIsHigh && isLowGate(f) &&
          n.cell.function != CellFunction::LevelConverter;
      fanins.push_back(needsConversion
                           ? converterFor(f)
                           : rep.nodeMap[static_cast<std::size_t>(f)]);
    }
    rep.nodeMap[static_cast<std::size_t>(i)] =
        rep.netlist.addGate(n.cell, std::move(fanins));
  }

  for (int out : src.outputs()) {
    int mapped = rep.nodeMap[static_cast<std::size_t>(out)];
    if (convertAtOutputs && isLowGate(out)) {
      mapped = converterFor(out);
    }
    rep.netlist.markOutput(mapped);
  }
  rep.netlist.validate();
  if (!rep.netlist.vddViolations().empty()) {
    throw std::logic_error("insertLevelConverters: violations remain");
  }
  return rep;
}

}  // namespace nano::opt
