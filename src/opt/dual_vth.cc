#include "opt/dual_vth.h"

#include <algorithm>
#include <numeric>

#include "obs/obs.h"
#include "sta/incremental.h"

namespace nano::opt {

using circuit::Netlist;
using circuit::VthClass;

DualVthResult runDualVth(const Netlist& netlist,
                         const circuit::Library& library,
                         const DualVthOptions& options, double freq) {
  NANO_OBS_SPAN("opt/dual_vth");
  DualVthResult res;
  res.timingBefore = sta::analyze(netlist, options.clockPeriod);
  const double clock = res.timingBefore.clockPeriod;
  if (freq <= 0) freq = 1.0 / clock;
  res.powerBefore = power::computePower(netlist, freq, options.piActivity);

  Netlist work = netlist;
  const double margin = options.guardband * clock;
  // Incremental engine: each trial swap repropagates only the affected
  // cone instead of re-timing the whole netlist.
  sta::IncrementalSta inc(work, clock);

  // Rank candidates by leakage saved per delay added (sensitivity order).
  const auto gates = work.gateIds();
  struct Candidate {
    int id = 0;
    double benefit = 0.0;
    double delta = 0.0;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(gates.size());
  for (int g : gates) {
    const auto& node = work.node(g);
    if (node.cell.vth != VthClass::Low) continue;
    const circuit::Cell high =
        library.recorner(node.cell, VthClass::High, node.cell.vddDomain);
    const double load = work.loadCap(g);
    const double delta = high.delay(load) - node.cell.delay(load);
    const double saved = node.cell.leakage - high.leakage;
    if (saved <= 0) continue;
    candidates.push_back({g, saved / std::max(delta, 1e-18), delta});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.benefit > b.benefit;
            });

  NANO_OBS_COUNT("opt/dualvth_candidates", static_cast<std::int64_t>(candidates.size()));
  int highCount = 0;
  int trials = 0;
  for (const Candidate& c : candidates) {
    if (inc.slack(c.id) < c.delta + margin) {
      continue;  // cannot possibly fit
    }
    const auto& node = work.node(c.id);
    inc.trial(c.id, library.recorner(node.cell, VthClass::High,
                                     node.cell.vddDomain));
    ++trials;
    if (inc.meetsTiming()) {
      inc.commit();
      ++highCount;
    } else {
      inc.rollback();
    }
  }
  NANO_OBS_COUNT("opt/dualvth_trials", trials);
  NANO_OBS_COUNT("opt/dualvth_accepted", highCount);

  res.fractionHighVth =
      static_cast<double>(highCount) / static_cast<double>(netlist.gateCount());
  res.powerAfter = power::computePower(work, freq, options.piActivity);
  res.timingAfter = inc.exportResult();
  res.netlist = std::move(work);
  return res;
}

}  // namespace nano::opt
