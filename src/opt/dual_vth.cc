#include "opt/dual_vth.h"

#include <algorithm>
#include <numeric>

#include "exec/exec.h"
#include "obs/obs.h"
#include "sta/incremental.h"

namespace nano::opt {

using circuit::Netlist;
using circuit::VthClass;

DualVthResult runDualVth(const Netlist& netlist,
                         const circuit::Library& library,
                         const DualVthOptions& options, double freq) {
  NANO_OBS_SPAN("opt/dual_vth");
  DualVthResult res;
  res.timingBefore = sta::analyze(netlist, options.clockPeriod);
  const double clock = res.timingBefore.clockPeriod;
  if (freq <= 0) freq = 1.0 / clock;
  res.powerBefore = power::computePower(netlist, freq, options.piActivity);

  Netlist work = netlist;
  const double margin = options.guardband * clock;
  // Incremental engine: each trial swap repropagates only the affected
  // cone instead of re-timing the whole netlist. Seeded with timingBefore
  // (work is still an exact copy), so no second full analysis runs.
  sta::IncrementalSta inc(work, res.timingBefore);

  // Rank candidates by leakage saved per delay added (sensitivity order).
  // Ranking only reads the shared netlist, so it maps over the gates in
  // parallel; slot i belongs to gate i, which keeps the pre-sort order —
  // and therefore the unstable sort's result — independent of the thread
  // count. Each candidate keeps its recornered cell so the serial trial
  // loop below swaps without re-characterizing.
  const auto gates = work.gateIds();
  struct Candidate {
    int id = 0;
    bool viable = false;
    double benefit = 0.0;
    double delta = 0.0;
    circuit::Cell high;
  };
  const std::vector<Candidate> ranked = exec::parallelMap<Candidate>(
      gates.size(), [&](std::size_t i) {
        const int g = gates[i];
        const auto& node = work.node(g);
        Candidate c;
        c.id = g;
        if (node.cell.vth != VthClass::Low) return c;
        circuit::Cell high =
            library.recorner(node.cell, VthClass::High, node.cell.vddDomain);
        const double load = work.loadCap(g);
        c.delta = high.delay(load) - node.cell.delay(load);
        const double saved = node.cell.leakage - high.leakage;
        if (saved <= 0) return c;
        c.benefit = saved / std::max(c.delta, 1e-18);
        c.viable = true;
        c.high = std::move(high);
        return c;
      });
  std::vector<Candidate> candidates;
  candidates.reserve(ranked.size());
  for (const Candidate& c : ranked) {
    if (c.viable) candidates.push_back(c);
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.benefit > b.benefit;
            });

  NANO_OBS_COUNT("opt/dualvth_candidates", static_cast<std::int64_t>(candidates.size()));
  int highCount = 0;
  int trials = 0;
  for (const Candidate& c : candidates) {
    if (inc.slack(c.id) < c.delta + margin) {
      continue;  // cannot possibly fit
    }
    inc.trial(c.id, c.high);
    ++trials;
    if (inc.meetsTiming()) {
      inc.commit();
      ++highCount;
    } else {
      inc.rollback();
    }
  }
  NANO_OBS_COUNT("opt/dualvth_trials", trials);
  NANO_OBS_COUNT("opt/dualvth_accepted", highCount);

  res.fractionHighVth =
      static_cast<double>(highCount) / static_cast<double>(netlist.gateCount());
  res.powerAfter = power::computePower(work, freq, options.piActivity);
  res.timingAfter = inc.exportResult();
  res.netlist = std::move(work);
  return res;
}

}  // namespace nano::opt
