#include "opt/sizing.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "obs/obs.h"
#include "sta/incremental.h"

namespace nano::opt {

using circuit::Cell;
using circuit::Netlist;

namespace {

/// Largest discrete drive strictly below `drive` (or -1 if none).
double nextSmallerDiscrete(const circuit::Library& library, double drive) {
  double best = -1.0;
  for (double d : library.config().driveStrengths) {
    if (d < drive - 1e-12 && d > best) best = d;
  }
  return best;
}

/// Smallest discrete drive >= `drive` (or largest available).
double roundUpDiscrete(const circuit::Library& library, double drive) {
  double best = -1.0;
  double largest = -1.0;
  for (double d : library.config().driveStrengths) {
    largest = std::max(largest, d);
    if (d >= drive && (best < 0 || d < best)) best = d;
  }
  return best > 0 ? best : largest;
}

Cell resized(const circuit::Library& library, const Cell& cell, double drive) {
  Cell c = library.generateCustom(cell.function, drive, cell.vth,
                                  cell.vddDomain);
  return c;
}

}  // namespace

SizingResult downsizeForPower(const Netlist& netlist,
                              const circuit::Library& library,
                              const SizingOptions& options, double freq) {
  NANO_OBS_SPAN("opt/downsize");
  SizingResult res;
  res.timingBefore = sta::analyze(netlist, options.clockPeriod);
  const double clock = res.timingBefore.clockPeriod;
  if (freq <= 0) freq = 1.0 / clock;
  res.powerBefore = power::computePower(netlist, freq, options.piActivity);
  res.areaBefore = netlist.totalArea();

  Netlist work = netlist;
  const double margin = options.guardband * clock;
  constexpr int kMaxPasses = 4;
  // Incremental engine: trial swaps repropagate only the affected cone;
  // slacks are always current, so each pass sorts on live values. Seeded
  // with timingBefore (work is still an exact copy), so no second full
  // analysis runs.
  sta::IncrementalSta inc(work, res.timingBefore);

  for (int pass = 0; pass < kMaxPasses; ++pass) {
    // Most-slack-first order.
    auto order = work.gateIds();
    std::sort(order.begin(), order.end(),
              [&](int a, int b) { return inc.slack(a) > inc.slack(b); });
    bool changed = false;
    for (int g : order) {
      bool resizedThisGate = false;
      // Keep shrinking the same gate while timing allows.
      for (;;) {
        const auto& node = work.node(g);
        const double newDrive =
            options.continuousSizes
                ? std::max(options.minDrive, node.cell.drive * 0.75)
                : nextSmallerDiscrete(library, node.cell.drive);
        if (newDrive <= 0 || newDrive >= node.cell.drive - 1e-12 ||
            newDrive < options.minDrive) {
          break;
        }
        const Cell candidate = resized(library, node.cell, newDrive);
        const double load = work.loadCap(g);
        const double delta = candidate.delay(load) - node.cell.delay(load);
        if (inc.slack(g) < delta + margin) break;

        inc.trial(g, candidate);
        if (inc.meetsTiming()) {
          inc.commit();
          changed = true;
          resizedThisGate = true;
        } else {
          inc.rollback();
          break;
        }
      }
      if (resizedThisGate) ++res.gatesResized;
    }
    if (!changed) break;
  }

  res.powerAfter = power::computePower(work, freq, options.piActivity);
  res.areaAfter = work.totalArea();
  res.timingAfter = inc.exportResult();
  res.netlist = std::move(work);
  return res;
}

SizingResult upsizeForTiming(const Netlist& netlist,
                             const circuit::Library& library,
                             double clockPeriod, double freq, double maxDrive) {
  NANO_OBS_SPAN("opt/upsize");
  SizingResult res;
  res.timingBefore = sta::analyze(netlist, clockPeriod);
  if (freq <= 0) freq = 1.0 / clockPeriod;
  res.powerBefore = power::computePower(netlist, freq);
  res.areaBefore = netlist.totalArea();

  Netlist work = netlist;
  const int maxMoves = 4 * netlist.gateCount();
  sta::IncrementalSta inc(work, res.timingBefore);
  for (int move = 0; move < maxMoves; ++move) {
    if (inc.meetsTiming()) break;

    // Best move on the critical path: largest estimated total delay gain.
    int bestGate = -1;
    Cell bestCell;
    double bestGain = 0.0;
    for (int g : inc.criticalPath()) {
      const auto& node = work.node(g);
      if (node.kind != Netlist::NodeKind::Gate) continue;
      const double newDrive = node.cell.drive * 1.5;
      if (newDrive > maxDrive) continue;
      const Cell candidate = resized(library, node.cell, newDrive);
      const double load = work.loadCap(g);
      double gain = node.cell.delay(load) - candidate.delay(load);
      // Penalty: heavier input cap slows every fanin driver.
      const double dcin = candidate.inputCap - node.cell.inputCap;
      for (int f : node.fanins) {
        const auto& drv = work.node(f);
        if (drv.kind == Netlist::NodeKind::Gate) {
          gain -= 0.69 * drv.cell.driveResistance * dcin;
        }
      }
      if (gain > bestGain) {
        bestGain = gain;
        bestGate = g;
        bestCell = candidate;
      }
    }
    if (bestGate < 0) break;  // no improving move
    inc.apply(bestGate, bestCell);
    ++res.gatesResized;
  }

  res.powerAfter = power::computePower(work, freq);
  res.areaAfter = work.totalArea();
  res.timingAfter = inc.exportResult();
  res.netlist = std::move(work);
  return res;
}

SizingResult sizeToLoad(const Netlist& netlist, const circuit::Library& library,
                        double targetEffort, const SizingOptions& options,
                        double freq) {
  SizingResult res;
  res.timingBefore = sta::analyze(netlist, options.clockPeriod);
  const double clock = res.timingBefore.clockPeriod;
  if (freq <= 0) freq = 1.0 / clock;
  res.powerBefore = power::computePower(netlist, freq, options.piActivity);
  res.areaBefore = netlist.totalArea();

  Netlist work = netlist;
  const double unitCin =
      library.generateCustom(circuit::CellFunction::Inv, 1.0).inputCap;

  // Reverse topological: sinks sized first so drivers see final loads.
  const auto gates = work.gateIds();
  for (auto it = gates.rbegin(); it != gates.rend(); ++it) {
    const int g = *it;
    const auto& node = work.node(g);
    const double load = work.loadCap(g);
    const double cinNeeded = load / targetEffort;
    double drive = cinNeeded /
                   (circuit::logicalEffortOf(node.cell.function) * unitCin);
    drive = std::max(drive, options.minDrive);
    if (!options.continuousSizes) drive = roundUpDiscrete(library, drive);
    if (std::abs(drive - node.cell.drive) > 1e-12) {
      work.replaceCell(g, resized(library, node.cell, drive));
      ++res.gatesResized;
    }
  }

  // Recover timing if the re-sizing broke it.
  sta::TimingResult timing = sta::analyze(work, clock);
  if (!timing.meetsTiming()) {
    SizingResult fix = upsizeForTiming(work, library, clock, freq);
    work = std::move(fix.netlist);
    res.gatesResized += fix.gatesResized;
  }

  res.powerAfter = power::computePower(work, freq, options.piActivity);
  res.areaAfter = work.totalArea();
  res.timingAfter = sta::analyze(work, clock);
  res.netlist = std::move(work);
  return res;
}

}  // namespace nano::opt
