// Transistor (gate) re-sizing (paper Sections 2.3 and 3.3): slack-driven
// downsizing for power, upsizing to recover timing, and on-the-fly exact
// sizing that matches each gate's drive to its load — the paper's library
// optimization story. Downsizing shows the sub-linear power return the
// paper criticizes: the wire capacitance does not shrink with the gates.
#pragma once

#include "circuit/library.h"
#include "circuit/netlist.h"
#include "power/power_model.h"
#include "sta/sta.h"

namespace nano::opt {

struct SizingOptions {
  double clockPeriod = -1.0;
  double guardband = 0.0;     ///< fraction of clock kept in reserve
  double piActivity = 0.2;
  /// Continuous sizing (on-the-fly cells) instead of the discrete set.
  bool continuousSizes = false;
  /// Smallest drive a gate may shrink to.
  double minDrive = 0.5;
};

struct SizingResult {
  circuit::Netlist netlist{0.0, 0.0};
  power::PowerBreakdown powerBefore;
  power::PowerBreakdown powerAfter;
  sta::TimingResult timingBefore;
  sta::TimingResult timingAfter;
  double areaBefore = 0.0;
  double areaAfter = 0.0;
  int gatesResized = 0;
  [[nodiscard]] double powerSavings() const {
    return 1.0 - powerAfter.total() / powerBefore.total();
  }
  [[nodiscard]] double areaSavings() const {
    return 1.0 - areaAfter / areaBefore;
  }
};

/// Downsize gates with slack, largest-benefit first, preserving timing.
SizingResult downsizeForPower(const circuit::Netlist& netlist,
                              const circuit::Library& library,
                              const SizingOptions& options = {},
                              double freq = -1.0);

/// Upsize gates on violating paths until `clockPeriod` is met (or no move
/// helps). Used to build timing-feasible starting points.
SizingResult upsizeForTiming(const circuit::Netlist& netlist,
                             const circuit::Library& library,
                             double clockPeriod, double freq = -1.0,
                             double maxDrive = 64.0);

/// The paper's Section 2.3 on-the-fly flow: give every gate exactly the
/// drive needed for its load at a target electrical fanout (stage effort),
/// subject to timing. With `continuousSizes` this emulates overnight
/// custom-cell generation; with discrete sizes it emulates the stock
/// library. Comparing the two reproduces the 15-22 % power reduction claim.
SizingResult sizeToLoad(const circuit::Netlist& netlist,
                        const circuit::Library& library, double targetEffort,
                        const SizingOptions& options = {}, double freq = -1.0);

}  // namespace nano::opt
