#include "opt/combined.h"

#include <stdexcept>

#include "obs/obs.h"

namespace nano::opt {

using circuit::Netlist;
using circuit::VddDomain;
using circuit::VthClass;

namespace {

double countFraction(const Netlist& nl, VddDomain domain) {
  int count = 0;
  int total = 0;
  for (int g : nl.gateIds()) {
    const auto& cell = nl.node(g).cell;
    if (cell.function == circuit::CellFunction::LevelConverter) continue;
    ++total;
    if (cell.vddDomain == domain) ++count;
  }
  return total ? static_cast<double>(count) / total : 0.0;
}

double countFraction(const Netlist& nl, VthClass vth) {
  int count = 0;
  int total = 0;
  for (int g : nl.gateIds()) {
    const auto& cell = nl.node(g).cell;
    if (cell.function == circuit::CellFunction::LevelConverter) continue;
    ++total;
    if (cell.vth == vth) ++count;
  }
  return total ? static_cast<double>(count) / total : 0.0;
}

}  // namespace

FlowResult runFlow(const Netlist& netlist, const circuit::Library& library,
                   const FlowOptions& options, double freq) {
  NANO_OBS_SPAN("opt/flow");
  FlowResult res;
  res.timingBefore = sta::analyze(netlist, options.clockPeriod);
  const double clock = res.timingBefore.clockPeriod;
  if (freq <= 0) freq = 1.0 / clock;
  res.powerBefore = power::computePower(netlist, freq, options.piActivity);

  Netlist current = netlist;
  // The working clock grows by the conversion latency once CVS inserts
  // level-converting capture stages (CvsResult::timingAfter carries it).
  double workingClock = clock;
  for (FlowStage stage : options.stages) {
    FlowStageResult sr;
    switch (stage) {
      case FlowStage::MultiVdd: {
        CvsOptions co;
        co.clockPeriod = workingClock;
        co.piActivity = options.piActivity;
        CvsResult r = runCvs(current, library, co, freq);
        current = std::move(r.netlist);
        workingClock = r.timingAfter.clockPeriod;
        sr.name = "multi-Vdd (CVS)";
        sr.power = r.powerAfter;
        sr.timing = std::move(r.timingAfter);
        break;
      }
      case FlowStage::DualVth: {
        DualVthOptions do_;
        do_.clockPeriod = workingClock;
        do_.piActivity = options.piActivity;
        DualVthResult r = runDualVth(current, library, do_, freq);
        current = std::move(r.netlist);
        sr.name = "dual-Vth";
        sr.power = r.powerAfter;
        sr.timing = std::move(r.timingAfter);
        break;
      }
      case FlowStage::Downsize: {
        SizingOptions so;
        so.clockPeriod = workingClock;
        so.piActivity = options.piActivity;
        so.continuousSizes = options.continuousSizes;
        SizingResult r = downsizeForPower(current, library, so, freq);
        current = std::move(r.netlist);
        sr.name = "downsizing";
        sr.gatesResized = r.gatesResized;
        sr.power = r.powerAfter;
        sr.timing = std::move(r.timingAfter);
        break;
      }
    }
    sr.fractionLowVdd = countFraction(current, VddDomain::Low);
    sr.fractionHighVth = countFraction(current, VthClass::High);
    res.stages.push_back(std::move(sr));
    NANO_OBS_COUNT("opt/flow_stages", 1);
  }
  res.netlist = std::move(current);
  return res;
}

}  // namespace nano::opt
