// Clustered voltage scaling (CVS, Usami-Horowitz [20]; paper Section 2.4):
// assign non-critical gates to a reduced supply Vdd,l, keeping the
// electrical rule that a Vdd,l gate never drives a Vdd,h gate directly —
// low-Vdd gates cluster into cones feeding the outputs, with level
// conversion at the register boundary.
#pragma once

#include "circuit/library.h"
#include "circuit/netlist.h"
#include "power/power_model.h"
#include "sta/sta.h"

namespace nano::opt {

/// CVS options.
struct CvsOptions {
  /// Clock period to honor; <= 0 means the circuit's own critical delay
  /// (all slack comes from path imbalance, as in the paper's discussion).
  double clockPeriod = -1.0;
  /// Extra timing margin kept in hand, as a fraction of the clock.
  double guardband = 0.01;
  double piActivity = 0.2;
};

/// CVS outcome.
struct CvsResult {
  circuit::Netlist netlist{0.0, 0.0};  ///< assigned + converters inserted
  double fractionLowVdd = 0.0;         ///< of original gates
  int convertersAdded = 0;
  power::PowerBreakdown powerBefore;
  power::PowerBreakdown powerAfter;
  sta::TimingResult timingBefore;
  sta::TimingResult timingAfter;
  [[nodiscard]] double dynamicSavings() const {
    const double before = powerBefore.dynamic;
    const double after = powerAfter.dynamic + powerAfter.levelConverter;
    return 1.0 - after / before;
  }
  [[nodiscard]] double converterPowerFraction() const {
    return powerAfter.levelConverter /
           (powerAfter.dynamic + powerAfter.levelConverter);
  }
};

/// Run CVS on `netlist` (all gates assumed Vdd,h on entry). `freq` is the
/// clock used for power reporting; defaults to 1/clockPeriod.
CvsResult runCvs(const circuit::Netlist& netlist,
                 const circuit::Library& library, const CvsOptions& options = {},
                 double freq = -1.0);

}  // namespace nano::opt
