// Simultaneous Vth selection and sizing (the approach of the paper's ref
// [22], Sirichotiyakul et al., "Standby power minimization through
// simultaneous threshold voltage and circuit sizing"): instead of running
// the knobs in sequence, every step greedily takes the single move —
// downsize one gate one notch, or raise one gate to high Vth — with the
// best power-saved-per-slack-consumed ratio, until no move fits timing.
#pragma once

#include "circuit/library.h"
#include "circuit/netlist.h"
#include "power/power_model.h"
#include "sta/sta.h"

namespace nano::opt {

struct SimultaneousOptions {
  double clockPeriod = -1.0;  ///< <= 0: the circuit's own critical delay
  double piActivity = 0.2;
  double minDrive = 0.5;
  /// Downsizing step per move (multiplicative).
  double sizeStep = 0.75;
  /// Safety cap on total accepted moves.
  int maxMoves = 100000;
};

struct SimultaneousResult {
  circuit::Netlist netlist{0.0, 0.0};
  power::PowerBreakdown powerBefore;
  power::PowerBreakdown powerAfter;
  sta::TimingResult timingBefore;
  sta::TimingResult timingAfter;
  int sizeMoves = 0;
  int vthMoves = 0;
  [[nodiscard]] double powerSavings() const {
    return 1.0 - powerAfter.total() / powerBefore.total();
  }
};

/// Run the interleaved optimizer. Gates may both shrink and move to high
/// Vth; timing is re-verified by full STA on every accepted move.
SimultaneousResult runSimultaneous(const circuit::Netlist& netlist,
                                   const circuit::Library& library,
                                   const SimultaneousOptions& options = {},
                                   double freq = -1.0);

}  // namespace nano::opt
