#include "opt/simultaneous.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <tuple>

#include "obs/obs.h"
#include "sta/incremental.h"

namespace nano::opt {

using circuit::Cell;
using circuit::Netlist;
using circuit::VthClass;

namespace {

/// A candidate move on one gate.
struct Move {
  int gate = -1;
  bool isVth = false;   // else: downsize
  double benefit = 0.0; // power saved per second of slack consumed
  Cell cell;            // the replacement cell
  double delta = 0.0;   // own delay increase estimate
};

}  // namespace

SimultaneousResult runSimultaneous(const Netlist& netlist,
                                   const circuit::Library& library,
                                   const SimultaneousOptions& options,
                                   double freq) {
  NANO_OBS_SPAN("opt/simultaneous");
  SimultaneousResult res;
  res.timingBefore = sta::analyze(netlist, options.clockPeriod);
  const double clock = res.timingBefore.clockPeriod;
  if (freq <= 0) freq = 1.0 / clock;
  res.powerBefore = power::computePower(netlist, freq, options.piActivity);

  Netlist work = netlist;
  sta::IncrementalSta inc(work, res.timingBefore);
  auto activity = power::propagateActivity(work, 0.5, options.piActivity);
  // Moves that failed full STA despite fitting the local slack estimate:
  // (gate, isVth, drive quantized) — skip instead of retrying forever.
  std::set<std::tuple<int, bool, long>> rejected;
  auto key = [](int g, bool isVth, double drive) {
    return std::make_tuple(g, isVth, std::lround(drive * 1024.0));
  };

  auto bestMoveFor = [&](int g) -> Move {
    Move best;
    const auto& node = work.node(g);
    const double load = work.loadCap(g);
    const double slack = inc.slack(g);
    const double act = activity.activity[static_cast<std::size_t>(g)];

    // Candidate 1: raise to high Vth (leakage saving, same dynamic).
    if (node.cell.vth == VthClass::Low) {
      Cell hvt = library.recorner(node.cell, VthClass::High,
                                  node.cell.vddDomain);
      const double delta = hvt.delay(load) - node.cell.delay(load);
      const double saved = node.cell.leakage - hvt.leakage;
      if (saved > 0 && slack >= delta &&
          !rejected.count(key(g, true, node.cell.drive))) {
        best.gate = g;
        best.isVth = true;
        best.benefit = saved / std::max(delta, 1e-18);
        best.cell = std::move(hvt);
        best.delta = delta;
      }
    }
    // Candidate 2: downsize one notch (dynamic + leakage saving upstream
    // and local).
    const double newDrive =
        std::max(options.minDrive, node.cell.drive * options.sizeStep);
    if (newDrive < node.cell.drive - 1e-12) {
      Cell small = library.generateCustom(node.cell.function, newDrive,
                                          node.cell.vth, node.cell.vddDomain);
      const double delta = small.delay(load) - node.cell.delay(load);
      // Power saved: own self-cap energy + upstream load energy + leakage.
      const double dynSaved =
          act * freq *
          ((node.cell.selfCap - small.selfCap) * node.cell.vdd * node.cell.vdd +
           (node.cell.inputCap - small.inputCap) * node.cell.vdd *
               node.cell.vdd);
      const double saved = dynSaved + (node.cell.leakage - small.leakage);
      if (saved > 0 && slack >= delta &&
          !rejected.count(key(g, false, newDrive))) {
        const double benefit = saved / std::max(delta, 1e-18);
        if (best.gate < 0 || benefit > best.benefit) {
          best.gate = g;
          best.isVth = false;
          best.benefit = benefit;
          best.cell = std::move(small);
          best.delta = delta;
        }
      }
    }
    return best;
  };

  for (int move = 0; move < options.maxMoves; ++move) {
    // Pick the best admissible move across all gates.
    Move best;
    for (int g : work.gateIds()) {
      const Move m = bestMoveFor(g);
      if (m.gate >= 0 && (best.gate < 0 || m.benefit > best.benefit)) {
        best = m;
      }
    }
    if (best.gate < 0) break;

    const Cell saved = work.node(best.gate).cell;
    inc.trial(best.gate, best.cell);
    if (inc.meetsTiming()) {
      inc.commit();
      (best.isVth ? res.vthMoves : res.sizeMoves) += 1;
    } else {
      inc.rollback();
      rejected.insert(key(best.gate, best.isVth, best.cell.drive));
      rejected.insert(key(best.gate, best.isVth, saved.drive));
      NANO_OBS_COUNT("opt/simultaneous_rejected", 1);
    }
  }
  NANO_OBS_COUNT("opt/simultaneous_accepted", res.vthMoves + res.sizeMoves);

  res.powerAfter = power::computePower(work, freq, options.piActivity);
  res.timingAfter = inc.exportResult();
  res.netlist = std::move(work);
  return res;
}

}  // namespace nano::opt
