#include "opt/cvs.h"

#include <algorithm>
#include <stdexcept>

#include "obs/obs.h"
#include "opt/level_converter.h"
#include "sta/incremental.h"

namespace nano::opt {

using circuit::CellFunction;
using circuit::Netlist;
using circuit::VddDomain;

CvsResult runCvs(const Netlist& netlist, const circuit::Library& library,
                 const CvsOptions& options, double freq) {
  NANO_OBS_SPAN("opt/cvs");
  CvsResult res;
  res.timingBefore = sta::analyze(netlist, options.clockPeriod);
  const double clock = res.timingBefore.clockPeriod;
  if (freq <= 0) freq = 1.0 / clock;
  res.powerBefore = power::computePower(netlist, freq, options.piActivity);

  Netlist work = netlist;
  const double margin = options.guardband * clock;
  // Converter latency absorbed at an output boundary if the endpoint gate
  // moves to Vdd,l (level-converting capture stage).
  const circuit::Cell lcCell =
      library.pick(CellFunction::LevelConverter, 1.0, circuit::VthClass::Low,
                   VddDomain::High);
  const double lcDelay = lcCell.delay(work.outputLoadCap());

  // Incremental engine on the unconverted working netlist: keeps per-gate
  // slacks live for the prune below at O(cone) per accepted move. The
  // exact converter-aware verification still times a converted copy.
  // Seeded with timingBefore (work is still an exact copy), so no second
  // full analysis runs.
  sta::IncrementalSta inc(work, res.timingBefore);
  const auto gates = work.gateIds();
  int lowCount = 0;

  // Reverse topological: low-Vdd cones grow from the outputs backwards.
  for (auto it = gates.rbegin(); it != gates.rend(); ++it) {
    const int g = *it;
    const auto& node = work.node(g);
    if (node.cell.function == CellFunction::LevelConverter) continue;

    // CVS structural rule: every fanout must already be Vdd,l.
    bool fanoutsLow = true;
    for (int fo : node.fanouts) {
      if (work.node(fo).cell.vddDomain != VddDomain::Low) {
        fanoutsLow = false;
        break;
      }
    }
    if (!fanoutsLow) continue;

    // Cheap prune: the delay increase must fit in this gate's slack.
    const circuit::Cell lowered =
        library.recorner(node.cell, node.cell.vth, VddDomain::Low);
    const double load = work.loadCap(g);
    double delta = lowered.delay(load) - node.cell.delay(load);
    if (node.isOutput) delta += lcDelay;
    if (inc.slack(g) < delta + margin) continue;

    // Apply and verify exactly: build the converted netlist and time it at
    // the original clock. Regular endpoints must meet the clock; endpoints
    // behind a level converter get the conversion latency absorbed by
    // their level-converting capture stage (one lcDelay of allowance).
    inc.trial(g, lowered);
    const ConversionReport trialConv = insertLevelConverters(work, library, true);
    const sta::TimingResult trial = sta::analyze(trialConv.netlist, clock);
    bool ok = true;
    for (int out : trialConv.netlist.outputs()) {
      const auto& endNode = trialConv.netlist.node(out);
      const bool isConverter =
          endNode.kind == Netlist::NodeKind::Gate &&
          endNode.cell.function == CellFunction::LevelConverter;
      const double allowance = isConverter ? lcDelay : 0.0;
      if (trial.slack[static_cast<std::size_t>(out)] < -allowance - 1e-15) {
        ok = false;
        break;
      }
    }
    NANO_OBS_COUNT("opt/cvs_trials", 1);
    if (ok) {
      inc.commit();
      ++lowCount;
    } else {
      inc.rollback();
    }
  }
  NANO_OBS_COUNT("opt/cvs_accepted", lowCount);

  res.fractionLowVdd =
      static_cast<double>(lowCount) / static_cast<double>(netlist.gateCount());

  ConversionReport conv = insertLevelConverters(work, library, true);
  res.netlist = std::move(conv.netlist);
  res.convertersAdded = conv.convertersAdded;
  NANO_OBS_COUNT("opt/cvs_converters_added", conv.convertersAdded);
  res.powerAfter = power::computePower(res.netlist, freq, options.piActivity);
  res.timingAfter = sta::analyze(res.netlist, clock + lcDelay);
  return res;
}

}  // namespace nano::opt
