// The "physical plant" of a closed-loop DTM/DVS scenario (paper Section
// 2.1): everything about the die + package that a management policy acts
// on, precomputed once and immutable afterwards so policy sweeps share it
// across threads.
//
// A Plant couples four existing layers into one queryable substrate:
//  - thermal:   a ThermalPackage (theta_ja sized for the effective or the
//               theoretical worst case) for dT/dt integration,
//  - sta:       a generated pipelined netlist timed by the flat SoA engine;
//               its critical-path delay defines the nominal clock period
//               and the endpoint slack profile,
//  - device:    delay/leakage response surfaces sampled from InverterModel
//               over (Vdd, temperature) — the Vdd-delay and the
//               leakage-temperature feedback paths,
//  - powergrid: a base IR-drop mesh solve at the node's minimum bump pitch
//               plus the wake-up bump inductance, scaled per step into an
//               IR-drop margin and an L*dI/dt rush-noise term.
//
// Plants cache process-wide by configuration (the GridModel::forConfig
// pattern): a 64-variant policy sweep builds the netlist, runs STA, and
// solves the grid exactly once.
#pragma once

#include <memory>
#include <vector>

#include "tech/itrs.h"
#include "thermal/package.h"

namespace nano::scenario {

/// What the plant is built from. Equality keys the process-wide cache.
struct PlantConfig {
  int nodeNm = 35;      ///< roadmap node
  int gates = 2000;     ///< generated design slice size
  int seed = 1;         ///< netlist generator seed
  int blocks = 8;       ///< pipeline blocks of the slice
  /// Junction-to-ambient resistance, K/W; 0 picks the node's theoretical-
  /// worst-case requirement (tjMax - tAmbient) / maxPower.
  double thetaJa = 0.0;
  double heatCapacity = 0.02;  ///< J/K lumped die+spreader
  /// Fraction of the node's max power that is switching (vs leakage) at
  /// nominal Vdd and the junction limit.
  double dynamicFraction = 0.7;
  /// Rail width over the minimum top-metal width for the IR solve. The
  /// default sizes the mesh so full power at nominal supply stays inside
  /// the 5 % noise budget with margin for wake-up rush on top.
  double gridWidthMultiple = 6.0;
  int gridSubdivisions = 8;        ///< mesh resolution of the IR solve

  friend bool operator==(const PlantConfig&, const PlantConfig&) = default;
};

/// Immutable precomputed substrate. Thread-safe to share by const ref.
class Plant {
 public:
  explicit Plant(const PlantConfig& config);

  /// Shared plant for `config` from the process-wide cache. Counts obs
  /// "scenario/plant_builds" on a build and "scenario/plant_reuses" on a
  /// hit; builds run under the "scenario/plant_build" timer.
  static std::shared_ptr<const Plant> forConfig(const PlantConfig& config);
  /// Drop every cached plant (tests that assert build counts).
  static void clearCache();

  [[nodiscard]] const PlantConfig& config() const { return config_; }
  [[nodiscard]] const tech::TechNode& node() const { return *node_; }
  [[nodiscard]] const thermal::ThermalPackage& package() const {
    return package_;
  }

  // Timing ---------------------------------------------------------------

  /// Nominal clock period, s: the generated netlist's critical-path delay
  /// at (Vdd, Tref) — zero worst slack at the nominal operating point.
  [[nodiscard]] double clockPeriod() const { return clockPeriod_; }
  [[nodiscard]] int gateCount() const { return gateCount_; }
  [[nodiscard]] int endpointCount() const { return endpointCount_; }
  /// The paper's slack-profile statistic at nominal: fraction of endpoints
  /// using less than half the cycle.
  [[nodiscard]] double fractionFasterThanHalf() const {
    return fractionFasterThanHalf_;
  }

  /// Path-delay multiplier at a supply fraction and junction temperature,
  /// from the device model (DIBL raises Vth as Vdd falls; mobility and
  /// Vth shift with T). Normalized to 1.0 at (1.0, Tref), Tref = tjMax:
  /// nominal clocking is timing-safe up to the junction limit exactly.
  [[nodiscard]] double delayScale(double vddFraction,
                                  double temperatureK) const;

  // Power ----------------------------------------------------------------

  /// Switching power at full utilization, nominal (f, Vdd), W.
  [[nodiscard]] double dynamicPowerNominal() const { return pdynNominal_; }
  /// Leakage power at nominal Vdd and Tref, W.
  [[nodiscard]] double leakagePowerNominal() const { return pleakNominal_; }
  /// Leakage multiplier at (Vdd fraction, temperature) — the exponential
  /// leakage-temperature feedback path. Normalized to 1.0 at (1.0, Tref).
  [[nodiscard]] double leakageScale(double vddFraction,
                                    double temperatureK) const;

  // Power grid -----------------------------------------------------------

  /// Worst IR drop as a fraction of the operating supply when the die
  /// draws `powerW` at `vddFraction` of nominal: the base mesh solution
  /// scales linearly with load current, which is P / (vFrac * VddNom),
  /// and the budget is a fraction of the operating supply vFrac * VddNom.
  [[nodiscard]] double irDropFraction(double powerW, double vddFraction) const;
  /// Base mesh drop fraction at max power, nominal supply.
  [[nodiscard]] double baseDropFraction() const { return baseDropFraction_; }

  /// Supply noise of a current step `deltaCurrentA` ramped over `rampS`
  /// through the bump array inductance, as a fraction of the operating
  /// supply (the Section 4 wake-up rush term).
  [[nodiscard]] double rushNoiseFraction(double deltaCurrentA, double rampS,
                                         double vddFraction) const;
  /// Effective bump-array inductance at the minimum pitch, H.
  [[nodiscard]] double wakeInductance() const { return wakeInductance_; }

  /// Supply current drawn at `powerW`, `vddFraction` of nominal, A.
  [[nodiscard]] double supplyCurrent(double powerW, double vddFraction) const;

 private:
  struct Surface {  ///< bilinear table over (vddFraction, temperatureK)
    std::vector<double> vdd;   ///< ascending sample axis
    std::vector<double> temp;  ///< ascending sample axis
    std::vector<double> value; ///< row-major [vdd][temp]
    [[nodiscard]] double at(double v, double t) const;
  };

  PlantConfig config_;
  const tech::TechNode* node_;
  thermal::ThermalPackage package_;
  double clockPeriod_ = 0.0;
  int gateCount_ = 0;
  int endpointCount_ = 0;
  double fractionFasterThanHalf_ = 0.0;
  double vthNominal_ = 0.0;
  double pdynNominal_ = 0.0;
  double pleakNominal_ = 0.0;
  Surface delaySurface_;
  Surface leakSurface_;
  double baseDropFraction_ = 0.0;
  double wakeInductance_ = 0.0;
};

}  // namespace nano::scenario
