#include "scenario/policy.h"

#include <algorithm>
#include <stdexcept>

namespace nano::scenario {

void ReactiveDtmPolicy::reset() {
  throttled_ = false;
  pendingChangeAt_ = -1.0;
  pendingState_ = false;
}

Actuation ReactiveDtmPolicy::decide(const PolicyObservation& obs) {
  // Same sensor state machine as thermal::simulateDtm: the comparator
  // output (with hysteresis) schedules an actuation change sensorDelay
  // in the future; the change applies once its time arrives.
  const bool wants =
      throttled_
          ? (obs.temperatureK >
             config_.tripTemperatureK - config_.hysteresisK)
          : (obs.temperatureK > config_.tripTemperatureK);
  if (wants != throttled_) {
    if (pendingChangeAt_ < 0 || pendingState_ != wants) {
      pendingChangeAt_ = obs.timeS + config_.sensorDelayS;
      pendingState_ = wants;
    }
    if (obs.timeS >= pendingChangeAt_) {
      throttled_ = pendingState_;
      pendingChangeAt_ = -1.0;
    }
  } else {
    pendingChangeAt_ = -1.0;
  }

  Actuation act;
  if (throttled_) {
    act.freqFraction = config_.throttleFactor;
    act.vddFraction = config_.scaleVdd ? config_.throttleFactor : 1.0;
  }
  return act;
}

TableDvfsPolicy::TableDvfsPolicy(const Config& config) : config_(config) {
  if (config_.levels.empty()) {
    throw std::invalid_argument("TableDvfsPolicy: empty level table");
  }
}

Actuation TableDvfsPolicy::decide(const PolicyObservation& obs) {
  const double d = std::clamp(obs.demandFraction, 0.0, 1.0);
  // The thermal::simulateDvfs governor contract: admissible = frequency
  // covers the demand; among admissible pick the lowest power factor;
  // fastest level when demand exceeds them all.
  const thermal::DvfsLevel* fastest = &config_.levels.front();
  const thermal::DvfsLevel* best = nullptr;
  for (const auto& level : config_.levels) {
    if (level.freqFraction > fastest->freqFraction) fastest = &level;
    if (level.freqFraction + 1e-12 >= d &&
        (best == nullptr || level.powerFactor() < best->powerFactor())) {
      best = &level;
    }
  }
  const thermal::DvfsLevel& pick = best != nullptr ? *best : *fastest;
  Actuation act;
  act.freqFraction = pick.freqFraction;
  act.vddFraction = pick.vddFraction;
  act.clockGate =
      config_.gateBelowDemand > 0.0 && d < config_.gateBelowDemand;
  return act;
}

void ExploreDvsPolicy::reset() {
  vdd_ = 1.0;
  stableSteps_ = 0;
}

Actuation ExploreDvsPolicy::decide(const PolicyObservation& obs) {
  const double slackGuard = config_.slackGuardFraction * obs.clockPeriodS;
  const bool tempTight =
      config_.temperatureLimitK > 0.0 &&
      obs.temperatureK > config_.temperatureLimitK - config_.tempGuardK;
  const bool irTight =
      obs.irDropFraction > config_.irGuardFraction * config_.irBudgetFraction;
  const bool slackTight = obs.slackS < slackGuard;

  if (slackTight || tempTight || irTight) {
    // A margin is closing: retreat one step immediately and restart the
    // settling count. The guard bands keep the retreat ahead of the
    // engine's hard assertions.
    vdd_ = std::min(1.0, vdd_ + config_.vddStep);
    stableSteps_ = 0;
  } else if (++stableSteps_ >= config_.holdSteps) {
    vdd_ = std::max(config_.vddMin, vdd_ - config_.vddStep);
    stableSteps_ = 0;
  }

  Actuation act;
  act.vddFraction = vdd_;
  // Linear V-f tracking: the delay surface grows faster than 1/V near
  // threshold, so slack still shrinks as Vdd falls and the slack guard
  // eventually binds — that bind point is the exploration's answer.
  act.freqFraction = vdd_;
  return act;
}

}  // namespace nano::scenario
