#include "scenario/plant.h"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <utility>

#include "circuit/generator.h"
#include "circuit/library.h"
#include "circuit/netlist_soa.h"
#include "device/gate_model.h"
#include "device/mosfet.h"
#include "obs/obs.h"
#include "powergrid/grid_model.h"
#include "powergrid/transient.h"
#include "sta/sta.h"
#include "util/numeric.h"
#include "util/rng.h"

namespace nano::scenario {

namespace {

// Response-surface sampling grid. The Vdd axis spans the deepest DVS step
// any policy is allowed to take down to half the nominal supply; the
// temperature axis brackets ambient through well past the junction limit
// so the integrator never extrapolates.
constexpr int kVddSamples = 13;
constexpr int kTempSamples = 9;
constexpr double kVddFracLo = 0.50;
constexpr double kVddFracHi = 1.05;

}  // namespace

double Plant::Surface::at(double v, double t) const {
  auto cell = [](const std::vector<double>& axis, double x) {
    const auto it = std::upper_bound(axis.begin(), axis.end(), x);
    std::size_t hi = static_cast<std::size_t>(it - axis.begin());
    hi = std::clamp<std::size_t>(hi, 1, axis.size() - 1);
    const double lo = axis[hi - 1];
    const double span = axis[hi] - lo;
    const double frac = std::clamp((x - lo) / span, 0.0, 1.0);
    return std::pair<std::size_t, double>(hi - 1, frac);
  };
  const auto [iv, fv] = cell(vdd, v);
  const auto [it, ft] = cell(temp, t);
  const std::size_t nt = temp.size();
  const double v00 = value[iv * nt + it];
  const double v01 = value[iv * nt + it + 1];
  const double v10 = value[(iv + 1) * nt + it];
  const double v11 = value[(iv + 1) * nt + it + 1];
  const double lo = v00 + (v01 - v00) * ft;
  const double hi = v10 + (v11 - v10) * ft;
  return lo + (hi - lo) * fv;
}

Plant::Plant(const PlantConfig& config)
    : config_(config),
      node_(&tech::nodeByFeature(config.nodeNm)),
      package_(config.thetaJa > 0.0 ? config.thetaJa
                                    : node_->requiredThetaJa(),
               config.heatCapacity) {
  NANO_OBS_TIMER("scenario/plant_build");

  // Timing substrate: the same generated design slice as the `sta`
  // request kind, timed once at nominal to fix the clock period and the
  // slack profile.
  {
    const circuit::Library library(*node_);
    util::Rng rng(static_cast<std::uint64_t>(config.seed));
    const circuit::GeneratorConfig cfg = circuit::scaledConfig(config.gates);
    const circuit::Netlist netlist =
        circuit::pipelinedLogic(library, cfg, rng, config.blocks);
    const circuit::NetlistSoA soa(netlist, {.keepCells = false});
    const sta::TimingResult timing = sta::analyze(soa);
    clockPeriod_ = timing.criticalPathDelay;
    gateCount_ = netlist.gateCount();
    endpointCount_ = static_cast<int>(netlist.outputs().size());
    fractionFasterThanHalf_ =
        sta::fractionOfPathsFasterThan(timing, netlist, 0.5);
  }

  // Device response surfaces. The physical device is fixed; operating it
  // at a reduced supply raises the effective Vth through DIBL, so each
  // sample re-specifies vth at its own operating point.
  const double tRef = node_->tjMax;
  vthNominal_ = device::solveVthForIon(*node_, node_->ionTarget);
  const double dibl = node_->dibl;
  const double wireCap = node_->localWireCapPerM * node_->avgLocalWireLength;

  delaySurface_.vdd = util::linspace(kVddFracLo, kVddFracHi, kVddSamples);
  delaySurface_.temp =
      util::linspace(node_->tAmbient - 15.0, node_->tjMax + 40.0,
                     kTempSamples);
  leakSurface_.vdd = delaySurface_.vdd;
  leakSurface_.temp = delaySurface_.temp;
  delaySurface_.value.reserve(kVddSamples * kTempSamples);
  leakSurface_.value.reserve(kVddSamples * kTempSamples);
  for (double vFrac : delaySurface_.vdd) {
    const double v = vFrac * node_->vdd;
    const double vth = vthNominal_ + dibl * (node_->vdd - v);
    for (double t : delaySurface_.temp) {
      const device::InverterModel inv(*node_, vth, v, {}, t);
      delaySurface_.value.push_back(inv.fo4Delay(wireCap));
      leakSurface_.value.push_back(inv.leakagePower());
    }
  }
  // Normalize delay against the worst case over the die's operating range
  // at nominal Vdd. With the roadmap's low supplies the device shows
  // temperature inversion (Vth falls faster than mobility with T), so the
  // slowest corner is the cold die at ambient, not the junction limit —
  // sampling the range keeps nominal clocking timing-safe either way.
  double delayRef = 0.0;
  for (double t : delaySurface_.temp) {
    if (t < node_->tAmbient - 1e-9 || t > node_->tjMax + 1e-9) continue;
    delayRef = std::max(delayRef, delaySurface_.at(1.0, t));
  }
  delayRef = std::max({delayRef, delaySurface_.at(1.0, node_->tAmbient),
                       delaySurface_.at(1.0, node_->tjMax)});
  const double leakRef = leakSurface_.at(1.0, tRef);
  for (double& d : delaySurface_.value) d /= delayRef;
  for (double& l : leakSurface_.value) l /= leakRef;

  pdynNominal_ = config.dynamicFraction * node_->maxPower;
  pleakNominal_ = (1.0 - config.dynamicFraction) * node_->maxPower;

  // Power-grid substrate: one mesh solve at the node's minimum bump pitch
  // fixes the drop-per-watt; the wake-up inductance comes from the same
  // bump array. Both scale linearly with load current per step.
  {
    powergrid::GridConfig grid = powergrid::gridConfigForNode(
        *node_, config.gridWidthMultiple, node_->minBumpPitch, true);
    grid.subdivisions = config.gridSubdivisions;
    const powergrid::GridSolution sol = powergrid::solveGrid(grid);
    baseDropFraction_ = sol.maxDropFraction;
    const powergrid::TransientReport wake = powergrid::wakeupTransient(
        *node_, powergrid::minPitchVddBumps(*node_));
    wakeInductance_ = wake.effectiveInductance;
  }
}

double Plant::delayScale(double vddFraction, double temperatureK) const {
  return delaySurface_.at(vddFraction, temperatureK);
}

double Plant::leakageScale(double vddFraction, double temperatureK) const {
  return leakSurface_.at(vddFraction, temperatureK);
}

double Plant::irDropFraction(double powerW, double vddFraction) const {
  // dropV scales with load current I = P / V; the fraction divides by the
  // operating supply once more: base * (P / Pmax) / vFrac^2.
  if (vddFraction <= 0.0) return 0.0;
  return baseDropFraction_ * (powerW / node_->maxPower) /
         (vddFraction * vddFraction);
}

double Plant::rushNoiseFraction(double deltaCurrentA, double rampS,
                                double vddFraction) const {
  if (deltaCurrentA <= 0.0 || rampS <= 0.0 || vddFraction <= 0.0) return 0.0;
  return wakeInductance_ * (deltaCurrentA / rampS) /
         (vddFraction * node_->vdd);
}

double Plant::supplyCurrent(double powerW, double vddFraction) const {
  if (vddFraction <= 0.0) return 0.0;
  return powerW / (vddFraction * node_->vdd);
}

// ------------------------------------------------------ process-wide cache

namespace {

struct PlantCache {
  std::mutex mutex;
  std::vector<std::pair<PlantConfig, std::shared_ptr<const Plant>>> entries;
};

PlantCache& plantCache() {
  static PlantCache* cache = new PlantCache();
  return *cache;
}

}  // namespace

std::shared_ptr<const Plant> Plant::forConfig(const PlantConfig& config) {
  PlantCache& cache = plantCache();
  {
    std::lock_guard<std::mutex> lock(cache.mutex);
    for (const auto& [key, plant] : cache.entries) {
      if (key == config) {
        NANO_OBS_COUNT("scenario/plant_reuses", 1);
        return plant;
      }
    }
  }
  // Build outside the lock (a build takes milliseconds; concurrent misses
  // may race to build, last insert wins — both plants are identical).
  NANO_OBS_COUNT("scenario/plant_builds", 1);
  auto plant = std::make_shared<const Plant>(config);
  std::lock_guard<std::mutex> lock(cache.mutex);
  for (const auto& [key, existing] : cache.entries) {
    if (key == config) return existing;
  }
  cache.entries.emplace_back(config, plant);
  return plant;
}

void Plant::clearCache() {
  PlantCache& cache = plantCache();
  std::lock_guard<std::mutex> lock(cache.mutex);
  cache.entries.clear();
}

}  // namespace nano::scenario
