// Pluggable management policies for the closed-loop scenario engine: what
// the paper's Section 2.1 calls dynamic thermal management and dynamic
// voltage scaling, plus the assertion-guarded exploration loop of Yu et
// al. A policy sees the plant's sensor state each step (temperature,
// timing slack, IR-drop margin — one step delayed, like a real sensor)
// and emits an actuation: a frequency fraction, a Vdd fraction, and a
// clock-gate request.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "thermal/dvfs.h"

namespace nano::scenario {

/// Sensor state a policy observes at the top of a step. Physical values
/// (temperature, slack, IR drop) are from the previous step's integration
/// — a policy never sees the consequences of the actuation it is about to
/// emit, which is what closes the loop.
struct PolicyObservation {
  double timeS = 0.0;
  double demandFraction = 0.0;   ///< workload demand, of peak throughput
  double temperatureK = 0.0;
  double slackS = 0.0;           ///< worst endpoint slack at current (f, V, T)
  double irDropFraction = 0.0;   ///< of the operating supply, incl. rush
  double clockPeriodS = 0.0;     ///< nominal period (for normalizing slack)
  double vddFraction = 1.0;      ///< currently applied actuation
  double freqFraction = 1.0;
  bool gated = false;
};

/// What a policy asks the plant to do for the coming step.
struct Actuation {
  double freqFraction = 1.0;
  double vddFraction = 1.0;
  bool clockGate = false;
};

/// Interface of a management policy. Policies are deterministic state
/// machines: same observation sequence, same actuation sequence.
class Policy {
 public:
  virtual ~Policy() = default;
  [[nodiscard]] virtual const char* name() const = 0;
  /// Forget all internal state (sensor latches, hold counters).
  virtual void reset() = 0;
  virtual Actuation decide(const PolicyObservation& obs) = 0;
};

/// Reactive DTM throttle: the Pentium 4-style trip sensor with hysteresis
/// and actuation delay, semantics matching thermal::simulateDtm. While
/// throttled the clock runs at `throttleFactor` (and Vdd tracks it when
/// `scaleVdd` is set, the ClockAndVdd kind).
class ReactiveDtmPolicy : public Policy {
 public:
  struct Config {
    double tripTemperatureK = 0.0;  ///< asserts above this
    double hysteresisK = 3.0;       ///< deasserts below trip - hysteresis
    double throttleFactor = 0.5;
    double sensorDelayS = 100e-6;
    bool scaleVdd = false;
  };
  explicit ReactiveDtmPolicy(const Config& config) : config_(config) {}

  [[nodiscard]] const char* name() const override { return "dtm"; }
  void reset() override;
  Actuation decide(const PolicyObservation& obs) override;
  [[nodiscard]] const Config& config() const { return config_; }

 private:
  Config config_;
  bool throttled_ = false;
  double pendingChangeAt_ = -1.0;
  bool pendingState_ = false;
};

/// Table-driven DVFS governor: picks the lowest-power level of a (f, V)
/// table whose frequency covers the observed demand (the fastest level if
/// none does — the thermal::simulateDvfs contract), and clock-gates below
/// a demand threshold (0 disables gating).
class TableDvfsPolicy : public Policy {
 public:
  struct Config {
    std::vector<thermal::DvfsLevel> levels;
    double gateBelowDemand = 0.0;
  };
  explicit TableDvfsPolicy(const Config& config);

  [[nodiscard]] const char* name() const override { return "dvfs"; }
  void reset() override {}
  Actuation decide(const PolicyObservation& obs) override;
  [[nodiscard]] const Config& config() const { return config_; }

 private:
  Config config_;
};

/// Assertion-guarded DVS exploration (Yu et al.): no level table. The
/// policy steps Vdd down (frequency tracking linearly) whenever the
/// observed slack, temperature, and IR margins have all cleared their
/// guard bands for `holdSteps` consecutive steps, and steps back up
/// immediately when any margin shrinks below its guard. The engine's
/// per-step checks are the assertions the guards keep it away from.
class ExploreDvsPolicy : public Policy {
 public:
  struct Config {
    double vddMin = 0.7;              ///< exploration floor, fraction
    double vddStep = 0.025;           ///< per-move step, fraction
    double slackGuardFraction = 0.08; ///< of the clock period
    double tempGuardK = 5.0;          ///< below the temperature limit
    double irGuardFraction = 0.8;     ///< of the IR budget
    int holdSteps = 16;               ///< stable steps before stepping down
    double temperatureLimitK = 0.0;   ///< from the scenario's check limits
    double irBudgetFraction = 0.05;
  };
  explicit ExploreDvsPolicy(const Config& config) : config_(config) {}

  [[nodiscard]] const char* name() const override { return "explore"; }
  void reset() override;
  Actuation decide(const PolicyObservation& obs) override;
  [[nodiscard]] const Config& config() const { return config_; }

 private:
  Config config_;
  double vdd_ = 1.0;
  int stableSteps_ = 0;
};

}  // namespace nano::scenario
