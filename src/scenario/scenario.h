// Time-stepped closed-loop DTM/DVS scenario engine. Couples a Plant (the
// thermal + timing + device + power-grid substrate), a Policy (DTM
// throttle, DVFS governor, assertion-guarded exploration), and an
// activity trace in one feedback loop:
//
//   workload demand -> policy actuation (f, Vdd, clock gate)
//     -> power (switching at f*V^2, leakage at leakageScale(V, T))
//     -> temperature (theta_ja RC step), IR drop (+ wake-up rush on
//        ungate / Vdd up-steps), timing slack (clock vs delayScale(V, T))
//     -> next step's sensor observation.
//
// Every step evaluates three assertions — temperature, IR-drop margin,
// timing slack — and the scenario fails loudly (violation records, ok =
// false, optionally fail-fast) when a policy breaks one. The loop is
// serial and allocation-light; results are byte-identical at any exec
// lane count, which the committed golden traces pin down.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "scenario/plant.h"
#include "scenario/policy.h"
#include "thermal/workload.h"

namespace nano::scenario {

/// Hard limits the per-step checks assert against.
struct CheckLimits {
  double maxTemperatureK = 0.0;   ///< 0 picks the node's tjMax
  double irBudgetFraction = 0.05; ///< supply-noise budget, of operating Vdd
  double minSlackS = 0.0;         ///< worst endpoint slack floor
};

enum class CheckKind { Temperature, IrDrop, TimingSlack };
const char* checkKindName(CheckKind kind);

/// One assertion failure: which check, when, and by how much.
struct Violation {
  CheckKind kind = CheckKind::Temperature;
  long step = 0;
  double timeS = 0.0;
  double value = 0.0;
  double limit = 0.0;
};

/// One decimated trace sample.
struct StepRecord {
  double timeS = 0.0;
  double demand = 0.0;
  double freqFraction = 1.0;
  double vddFraction = 1.0;
  bool gated = false;
  double powerW = 0.0;
  double temperatureK = 0.0;
  double slackS = 0.0;
  double irDropFraction = 0.0;
  double rushFraction = 0.0;
  long violations = 0;  ///< cumulative count up to this sample
};

struct ScenarioConfig {
  thermal::PowerTrace workload;  ///< demand fractions of peak throughput
  double tAmbientK = 0.0;        ///< 0 picks the node's ambient
  double dt = 50e-6;             ///< s, integration step
  long steps = 0;                ///< 0 derives from workload duration / dt
  CheckLimits limits;
  int traceStride = 100;         ///< decimation of the recorded trace
  bool failFast = false;         ///< stop at the first violation
  double wakeRampS = 5e-9;       ///< current ramp of ungate / Vdd up-steps
  /// Residual switching (clock tree stubs, retention) while gated, as a
  /// fraction of nominal dynamic power (times V^2).
  double gatedDynamicFraction = 0.02;
};

struct ScenarioResult {
  bool ok = true;                 ///< no check ever fired
  long steps = 0;
  long checksEvaluated = 0;       ///< 3 per integrated step
  long violationCount = 0;
  std::vector<Violation> violations;  ///< first kMaxViolationsRecorded
  double energyJ = 0.0;
  double baselineEnergyJ = 0.0;   ///< same workload at nominal (f=V=1)
  double throughputFraction = 0.0;///< delivered / demanded work
  double maxTemperatureK = 0.0;
  double avgTemperatureK = 0.0;
  double peakPowerW = 0.0;
  double peakIrDropFraction = 0.0;///< incl. rush
  double peakRushFraction = 0.0;
  double worstSlackS = 0.0;
  long gateEvents = 0;            ///< clock-gate transitions (both edges)
  long vddSteps = 0;              ///< actuation changes of the Vdd fraction
  std::vector<StepRecord> trace;
  [[nodiscard]] double energySavings() const {
    return baselineEnergyJ > 0.0 ? 1.0 - energyJ / baselineEnergyJ : 0.0;
  }
};

/// Cap on stored Violation records; the count keeps running past it.
inline constexpr int kMaxViolationsRecorded = 64;

/// Run the loop. Throws std::invalid_argument on a non-positive dt/steps,
/// an empty workload, or a traceStride < 1.
ScenarioResult runScenario(const Plant& plant, Policy& policy,
                           const ScenarioConfig& config);

/// The decimated trace as CSV (header + one row per sample), rendered
/// with util::formatCsvDouble so committed goldens are byte-stable.
std::string scenarioCsv(const ScenarioResult& result);

// ------------------------------------------------- canonical scenarios

/// Declarative description of a scenario run; the svc request kinds map
/// onto this 1:1. `knobA`/`knobB` tune the policy (0 = policy default):
///   dtm:     A = throttle factor,        B = trip margin below tjMax, K
///   dvfs:    A = level-voltage scale,    B = gate-below-demand threshold
///   explore: A = Vdd exploration floor,  B = slack guard fraction
struct ScenarioSpec {
  int nodeNm = 35;
  std::string scenario = "dtm";  ///< "dtm" | "dvfs" | "wakeup"
  std::string policy;            ///< "" = scenario default; else
                                 ///< "dtm" | "dvfs" | "explore"
  long steps = 2000;
  double dtUs = 50.0;
  int gates = 2000;
  int seed = 1;
  int traceStride = 100;
  double knobA = 0.0;
  double knobB = 0.0;
};

/// A spec resolved against the plant cache: ready to run.
struct ScenarioSetup {
  std::shared_ptr<const Plant> plant;
  std::unique_ptr<Policy> policy;
  ScenarioConfig config;
};

/// Default policy name of a canonical scenario ("dtm" -> "dtm", "dvfs" ->
/// "dvfs", "wakeup" -> "dvfs" with gating). Throws on unknown names.
const char* defaultPolicyFor(const std::string& scenario);

/// Policy-knob sweep ranges for the scenario sweep request kind.
struct KnobRange {
  double aLo = 0.0, aHi = 0.0;
  double bLo = 0.0, bHi = 0.0;
};
KnobRange knobRangeFor(const std::string& policy);

/// Build the plant (cached), the policy, and the workload/limits for a
/// spec. Throws std::invalid_argument on unknown scenario/policy names or
/// out-of-range knobs. Counts obs "scenario/setups".
ScenarioSetup makeScenario(const ScenarioSpec& spec);

/// The committed-golden configuration of a canonical scenario ("dtm",
/// "dvfs", "wakeup"): 4000 steps of 50 us on the 35 nm node, default
/// policy and knobs, stride-50 trace. golden/scenario_<name>.csv is
/// scenarioCsv() of exactly this spec.
ScenarioSpec canonicalSpec(const std::string& name);

}  // namespace nano::scenario
