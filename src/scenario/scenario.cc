#include "scenario/scenario.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/obs.h"
#include "util/csv.h"
#include "util/rng.h"

namespace nano::scenario {

namespace {

void appendPhases(thermal::PowerTrace& into, const thermal::PowerTrace& from) {
  into.phases.insert(into.phases.end(), from.phases.begin(),
                     from.phases.end());
}

}  // namespace

const char* checkKindName(CheckKind kind) {
  switch (kind) {
    case CheckKind::Temperature: return "temperature";
    case CheckKind::IrDrop: return "ir_drop";
    case CheckKind::TimingSlack: return "timing_slack";
  }
  return "unknown";
}

ScenarioResult runScenario(const Plant& plant, Policy& policy,
                           const ScenarioConfig& config) {
  NANO_OBS_TIMER("scenario/run");
  if (!(config.dt > 0.0) || !std::isfinite(config.dt)) {
    throw std::invalid_argument("runScenario: dt must be positive");
  }
  if (config.traceStride < 1) {
    throw std::invalid_argument("runScenario: traceStride must be >= 1");
  }
  long steps = config.steps;
  if (steps <= 0) {
    steps = static_cast<long>(config.workload.totalDuration() / config.dt);
  }
  if (steps <= 0) {
    throw std::invalid_argument("runScenario: empty workload");
  }

  const tech::TechNode& node = plant.node();
  const double tAmbient =
      config.tAmbientK > 0.0 ? config.tAmbientK : node.tAmbient;
  const double maxTemperature = config.limits.maxTemperatureK > 0.0
                                    ? config.limits.maxTemperatureK
                                    : node.tjMax;
  const double clock = plant.clockPeriod();
  const thermal::ThermalPackage& package = plant.package();

  policy.reset();

  ScenarioResult result;
  result.worstSlackS = clock;  // shrinks to the observed minimum

  double temperature = tAmbient;
  double baselineTemperature = tAmbient;
  double freq = 1.0;
  double vdd = 1.0;
  bool gated = false;
  // First observation: cold die at the nominal operating point.
  double slack = clock - clock * plant.delayScale(1.0, tAmbient);
  double irDrop = 0.0;
  double prevCurrent = 0.0;
  double tempSum = 0.0;
  double demandedWork = 0.0;
  double deliveredWork = 0.0;
  long integrated = 0;

  for (long step = 0; step < steps; ++step) {
    const double t = static_cast<double>(step) * config.dt;
    const double demand =
        std::clamp(config.workload.at(t), 0.0, 1.0);

    PolicyObservation obs;
    obs.timeS = t;
    obs.demandFraction = demand;
    obs.temperatureK = temperature;
    obs.slackS = slack;
    obs.irDropFraction = irDrop;
    obs.clockPeriodS = clock;
    obs.vddFraction = vdd;
    obs.freqFraction = freq;
    obs.gated = gated;

    Actuation act = policy.decide(obs);
    act.freqFraction = std::clamp(act.freqFraction, 0.01, 1.2);
    act.vddFraction = std::clamp(act.vddFraction, 0.5, 1.05);
    const bool vddRose = act.vddFraction > vdd;
    if (act.vddFraction != vdd) ++result.vddSteps;
    const bool ungated = gated && !act.clockGate;
    if (act.clockGate != gated) ++result.gateEvents;
    freq = act.freqFraction;
    vdd = act.vddFraction;
    gated = act.clockGate;

    // Power at the actuated operating point.
    const double delivered = gated ? 0.0 : std::min(demand, freq);
    const double busy = freq > 0.0 ? delivered / freq : 0.0;
    const double vSq = vdd * vdd;
    const double pdyn =
        gated ? config.gatedDynamicFraction * plant.dynamicPowerNominal() * vSq
              : busy * plant.dynamicPowerNominal() * freq * vSq;
    const double pleak =
        plant.leakagePowerNominal() * plant.leakageScale(vdd, temperature);
    const double power = pdyn + pleak;
    const double current = plant.supplyCurrent(power, vdd);

    // Wake-up rush: a positive current step ramped through the bump
    // inductance on leaving a gated state or stepping Vdd up.
    double rush = 0.0;
    if (ungated || vddRose) {
      rush = plant.rushNoiseFraction(current - prevCurrent, config.wakeRampS,
                                     vdd);
    }
    irDrop = plant.irDropFraction(power, vdd) + rush;

    // Physics step and the timing consequence.
    temperature = package.step(temperature, power, tAmbient, config.dt);
    slack = clock / freq - clock * plant.delayScale(vdd, temperature);

    // The three per-step assertions.
    auto check = [&](CheckKind kind, bool bad, double value, double limit) {
      ++result.checksEvaluated;
      if (!bad) return;
      ++result.violationCount;
      if (static_cast<int>(result.violations.size()) <
          kMaxViolationsRecorded) {
        result.violations.push_back({kind, step, t, value, limit});
      }
    };
    check(CheckKind::Temperature, temperature > maxTemperature, temperature,
          maxTemperature);
    check(CheckKind::IrDrop, irDrop > config.limits.irBudgetFraction, irDrop,
          config.limits.irBudgetFraction);
    check(CheckKind::TimingSlack, slack < config.limits.minSlackS, slack,
          config.limits.minSlackS);

    NANO_OBS_GAUGE("scenario/temperature_k", temperature);
    NANO_OBS_GAUGE("scenario/ir_drop_fraction", irDrop);
    NANO_OBS_GAUGE("scenario/slack_ps", slack * 1e12);

    // Accounting.
    ++integrated;
    tempSum += temperature;
    demandedWork += demand;
    deliveredWork += delivered;
    result.energyJ += power * config.dt;
    result.maxTemperatureK = std::max(result.maxTemperatureK, temperature);
    result.peakPowerW = std::max(result.peakPowerW, power);
    result.peakIrDropFraction = std::max(result.peakIrDropFraction, irDrop);
    result.peakRushFraction = std::max(result.peakRushFraction, rush);
    result.worstSlackS = std::min(result.worstSlackS, slack);
    prevCurrent = current;

    // Nominal baseline: the same demand at full frequency and voltage,
    // its own thermal trajectory (race-to-idle energy comparison).
    const double basePower =
        demand * plant.dynamicPowerNominal() +
        plant.leakagePowerNominal() *
            plant.leakageScale(1.0, baselineTemperature);
    baselineTemperature =
        package.step(baselineTemperature, basePower, tAmbient, config.dt);
    result.baselineEnergyJ += basePower * config.dt;

    if (step % config.traceStride == 0) {
      result.trace.push_back({t, demand, freq, vdd, gated, power, temperature,
                              slack, irDrop, rush, result.violationCount});
    }

    if (config.failFast && result.violationCount > 0) break;
  }

  result.steps = integrated;
  result.ok = result.violationCount == 0;
  result.avgTemperatureK = tempSum / static_cast<double>(integrated);
  result.throughputFraction =
      demandedWork > 0.0 ? deliveredWork / demandedWork : 1.0;

  NANO_OBS_COUNT("scenario/runs", 1);
  NANO_OBS_COUNT("scenario/steps", integrated);
  NANO_OBS_COUNT("scenario/checks", result.checksEvaluated);
  NANO_OBS_COUNT("scenario/violations", result.violationCount);
  NANO_OBS_COUNT("scenario/gate_events", result.gateEvents);
  NANO_OBS_COUNT("scenario/vdd_steps", result.vddSteps);
  return result;
}

std::string scenarioCsv(const ScenarioResult& result) {
  std::string out =
      "time_s,demand,freq_fraction,vdd_fraction,gated,power_w,"
      "temperature_k,slack_ps,ir_drop_fraction,rush_fraction,violations\n";
  for (const StepRecord& r : result.trace) {
    out += util::formatCsvDouble(r.timeS);
    out.push_back(',');
    out += util::formatCsvDouble(r.demand);
    out.push_back(',');
    out += util::formatCsvDouble(r.freqFraction);
    out.push_back(',');
    out += util::formatCsvDouble(r.vddFraction);
    out.push_back(',');
    out += r.gated ? '1' : '0';
    out.push_back(',');
    out += util::formatCsvDouble(r.powerW);
    out.push_back(',');
    out += util::formatCsvDouble(r.temperatureK);
    out.push_back(',');
    out += util::formatCsvDouble(r.slackS * 1e12);
    out.push_back(',');
    out += util::formatCsvDouble(r.irDropFraction);
    out.push_back(',');
    out += util::formatCsvDouble(r.rushFraction);
    out.push_back(',');
    out += std::to_string(r.violations);
    out.push_back('\n');
  }
  return out;
}

// ---------------------------------------------------- canonical scenarios

const char* defaultPolicyFor(const std::string& scenario) {
  if (scenario == "dtm") return "dtm";
  if (scenario == "dvfs") return "dvfs";
  if (scenario == "wakeup") return "dvfs";
  throw std::invalid_argument("unknown scenario \"" + scenario + "\"");
}

KnobRange knobRangeFor(const std::string& policy) {
  if (policy == "dtm") return {0.3, 0.9, 1.0, 8.0};
  if (policy == "dvfs") return {0.92, 1.06, 0.0, 0.3};
  if (policy == "explore") return {0.6, 0.9, 0.03, 0.2};
  throw std::invalid_argument("unknown policy \"" + policy + "\"");
}

ScenarioSetup makeScenario(const ScenarioSpec& spec) {
  NANO_OBS_COUNT("scenario/setups", 1);
  if (spec.steps < 1) {
    throw std::invalid_argument("scenario: steps must be >= 1");
  }
  if (!(spec.dtUs > 0.0) || !std::isfinite(spec.dtUs)) {
    throw std::invalid_argument("scenario: dt_us must be positive");
  }
  if (spec.traceStride < 1) {
    throw std::invalid_argument("scenario: trace_stride must be >= 1");
  }
  const std::string policyName =
      spec.policy.empty() ? defaultPolicyFor(spec.scenario) : spec.policy;
  const KnobRange range = knobRangeFor(policyName);  // validates the name
  (void)defaultPolicyFor(spec.scenario);             // validates the name
  auto resolveKnob = [](double knob, double fallback, double lo, double hi,
                        const char* which) {
    if (knob == 0.0) return fallback;
    if (!std::isfinite(knob) || knob < lo || knob > hi) {
      throw std::invalid_argument(
          std::string("scenario: ") + which + " knob out of range [" +
          util::formatCsvDouble(lo) + ", " + util::formatCsvDouble(hi) + "]");
    }
    return knob;
  };

  const tech::TechNode& node = tech::nodeByFeature(spec.nodeNm);
  const double dt = spec.dtUs * 1e-6;
  const double duration = static_cast<double>(spec.steps) * dt;

  ScenarioSetup setup;
  setup.config.dt = dt;
  setup.config.steps = spec.steps;
  setup.config.traceStride = spec.traceStride;

  PlantConfig plantConfig;
  plantConfig.nodeNm = spec.nodeNm;
  plantConfig.gates = spec.gates;
  plantConfig.seed = spec.seed;

  // Workload + packaging per canonical scenario.
  if (spec.scenario == "dtm") {
    // Packaged for the effective worst case (75 % of the virus): the DTM
    // throttle is what keeps the virus segment inside the junction limit.
    plantConfig.thetaJa =
        thermal::requiredThetaJa(0.75 * node.maxPower, node.tjMax,
                                 node.tAmbient);
    util::Rng rng(static_cast<std::uint64_t>(spec.seed));
    setup.config.workload =
        thermal::typicalApplication(rng, 0.35 * duration);
    appendPhases(setup.config.workload, thermal::powerVirus(0.30 * duration));
    appendPhases(setup.config.workload,
                 thermal::typicalApplication(rng, 0.35 * duration));
  } else if (spec.scenario == "dvfs") {
    // Deterministic demand staircase cycling light/heavy phases: the
    // energy-vs-slack workload.
    static constexpr double kStair[] = {0.20, 0.85, 0.45, 0.10,
                                        0.65, 0.30, 0.95, 0.15};
    const int cycles = 3;
    const int phases = cycles * 8;
    for (int i = 0; i < phases; ++i) {
      setup.config.workload.phases.push_back(
          {duration / phases, kStair[i % 8]});
    }
  } else {  // "wakeup" (names validated above)
    setup.config.workload =
        thermal::idleBurst(duration, duration / 6.0, 0.35, 0.05);
  }

  setup.plant = Plant::forConfig(plantConfig);

  if (policyName == "dtm") {
    ReactiveDtmPolicy::Config cfg;
    cfg.throttleFactor =
        resolveKnob(spec.knobA, 0.5, range.aLo, range.aHi, "throttle");
    const double margin =
        resolveKnob(spec.knobB, 4.0, range.bLo, range.bHi, "trip-margin");
    cfg.tripTemperatureK = node.tjMax - margin;
    setup.policy = std::make_unique<ReactiveDtmPolicy>(cfg);
  } else if (policyName == "dvfs") {
    TableDvfsPolicy::Config cfg;
    const double vddScale =
        resolveKnob(spec.knobA, 1.0, range.aLo, range.aHi, "vdd-scale");
    const double defaultGate = spec.scenario == "wakeup" ? 0.08 : 0.0;
    cfg.gateBelowDemand =
        resolveKnob(spec.knobB, defaultGate, range.bLo, range.bHi, "gate");
    for (thermal::DvfsLevel level : thermal::DvfsPolicy{}.levels) {
      level.vddFraction =
          std::clamp(level.vddFraction * vddScale, 0.55, 1.0);
      cfg.levels.push_back(level);
    }
    setup.policy = std::make_unique<TableDvfsPolicy>(cfg);
  } else {  // "explore"
    ExploreDvsPolicy::Config cfg;
    cfg.vddMin = resolveKnob(spec.knobA, 0.7, range.aLo, range.aHi,
                             "vdd-min");
    cfg.slackGuardFraction =
        resolveKnob(spec.knobB, 0.08, range.bLo, range.bHi, "slack-guard");
    cfg.temperatureLimitK = node.tjMax;
    cfg.irBudgetFraction = setup.config.limits.irBudgetFraction;
    setup.policy = std::make_unique<ExploreDvsPolicy>(cfg);
  }
  return setup;
}

ScenarioSpec canonicalSpec(const std::string& name) {
  (void)defaultPolicyFor(name);  // validates the name
  ScenarioSpec spec;
  spec.scenario = name;
  spec.steps = 4000;
  spec.dtUs = 50.0;
  spec.traceStride = 50;
  return spec;
}

}  // namespace nano::scenario
