// Static timing analysis: topological arrival and required times, slacks,
// the critical path, and the endpoint slack distribution the paper's
// multi-Vdd argument rests on ("over half of all timing paths commonly use
// less than half the clock cycle").
//
// The engine sweeps the flat circuit::NetlistSoA arrays level by level —
// every node of a level depends only on strictly earlier (forward) or
// strictly later (backward) levels, so each level runs data-parallel
// through exec::parallelForBlocked with bit-identical results at any lane
// count. The object-netlist overloads are thin wrappers that mirror into
// SoA form first; their results are bit-identical to the historical
// pointer-walking implementation.
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/netlist.h"
#include "circuit/netlist_soa.h"
#include "util/arena.h"
#include "util/stats.h"

namespace nano::sta {

/// Full timing picture of a netlist at a clock period.
struct TimingResult {
  double clockPeriod = 0.0;           ///< s
  double criticalPathDelay = 0.0;     ///< s
  std::vector<double> arrival;        ///< per node, s
  std::vector<double> required;       ///< per node, s
  std::vector<double> slack;          ///< per node, s
  std::vector<int> criticalPath;      ///< node ids, input -> endpoint
  double worstSlack = 0.0;            ///< min over endpoints, s

  [[nodiscard]] bool meetsTiming(double tolerance = 1e-15) const {
    return worstSlack >= -tolerance;
  }
};

/// Reusable full-analysis engine over a NetlistSoA. Binds by reference;
/// the caller keeps the SoA alive. All working storage (the level-sweep
/// scratch and the TimingResult buffers) is allocated on the first
/// analyze() and reused afterwards, so steady-state re-analysis performs
/// zero heap allocations — arenaGrowthCount() is the proof the scale
/// smoke test asserts on.
class Sta {
 public:
  explicit Sta(const circuit::NetlistSoA& soa) : soa_(&soa) {}

  /// Analyze against `clockPeriod`; pass <= 0 to time against the
  /// circuit's own critical-path delay (zero worst slack). Returns the
  /// internal result, valid until the next analyze() call.
  const TimingResult& analyze(double clockPeriod = -1.0);

  [[nodiscard]] const TimingResult& result() const { return result_; }

  /// Heap-growth events of the scratch arena over this engine's lifetime
  /// (flat across steady-state analyze() calls).
  [[nodiscard]] std::int64_t arenaGrowthCount() const {
    return arena_.growthCount();
  }
  /// Flat-core working set: the bound SoA's arrays plus this engine's
  /// scratch, bytes. Also exported as the `sta/arena_bytes` gauge.
  [[nodiscard]] std::size_t arenaBytes() const {
    return soa_->arenaBytes() + arena_.bytesUsed();
  }

 private:
  struct SweepCtx {
    const circuit::NetlistSoA* soa = nullptr;
    const std::uint32_t* order = nullptr;
    double* arrival = nullptr;
    double* required = nullptr;
    double* slack = nullptr;
    std::int32_t* worstFanin = nullptr;
    std::size_t base = 0;  ///< offset of the level being swept
    double clock = 0.0;
  };

  const circuit::NetlistSoA* soa_;
  util::Arena arena_;
  std::int32_t* worstFanin_ = nullptr;
  SweepCtx ctx_;
  TimingResult result_;
};

/// One-shot analysis of a NetlistSoA.
TimingResult analyze(const circuit::NetlistSoA& soa, double clockPeriod = -1.0);

/// Analyze `netlist` against `clockPeriod` (object-API wrapper: mirrors
/// into a NetlistSoA and runs the flat engine; bit-identical results).
/// Pass clockPeriod <= 0 to time against the circuit's own critical-path
/// delay (zero worst slack).
TimingResult analyze(const circuit::Netlist& netlist, double clockPeriod = -1.0);

/// Arrival times at the endpoints (primary outputs), s.
std::vector<double> endpointArrivals(const circuit::Netlist& netlist);

/// Fraction of endpoints whose path uses less than `fraction` of the clock
/// period (the paper's slack-profile statistic).
double fractionOfPathsFasterThan(const TimingResult& timing,
                                 const circuit::Netlist& netlist,
                                 double fraction);

/// Endpoint path-delay histogram normalized to the clock period.
util::Histogram pathDelayHistogram(const TimingResult& timing,
                                   const circuit::Netlist& netlist,
                                   int bins = 20);

}  // namespace nano::sta
