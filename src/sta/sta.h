// Static timing analysis over a circuit::Netlist: topological arrival and
// required times, slacks, the critical path, and the endpoint slack
// distribution the paper's multi-Vdd argument rests on ("over half of all
// timing paths commonly use less than half the clock cycle").
#pragma once

#include <vector>

#include "circuit/netlist.h"
#include "util/stats.h"

namespace nano::sta {

/// Full timing picture of a netlist at a clock period.
struct TimingResult {
  double clockPeriod = 0.0;           ///< s
  double criticalPathDelay = 0.0;     ///< s
  std::vector<double> arrival;        ///< per node, s
  std::vector<double> required;       ///< per node, s
  std::vector<double> slack;          ///< per node, s
  std::vector<int> criticalPath;      ///< node ids, input -> endpoint
  double worstSlack = 0.0;            ///< min over endpoints, s

  [[nodiscard]] bool meetsTiming(double tolerance = 1e-15) const {
    return worstSlack >= -tolerance;
  }
};

/// Analyze `netlist` against `clockPeriod`. Pass clockPeriod <= 0 to time
/// against the circuit's own critical-path delay (zero worst slack).
TimingResult analyze(const circuit::Netlist& netlist, double clockPeriod = -1.0);

/// Arrival times at the endpoints (primary outputs), s.
std::vector<double> endpointArrivals(const circuit::Netlist& netlist);

/// Fraction of endpoints whose path uses less than `fraction` of the clock
/// period (the paper's slack-profile statistic).
double fractionOfPathsFasterThan(const TimingResult& timing,
                                 const circuit::Netlist& netlist,
                                 double fraction);

/// Endpoint path-delay histogram normalized to the clock period.
util::Histogram pathDelayHistogram(const TimingResult& timing,
                                   const circuit::Netlist& netlist,
                                   int bins = 20);

}  // namespace nano::sta
