#include "sta/ssta.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "device/variation.h"
#include "util/numeric.h"

namespace nano::sta {

namespace {

constexpr double kInvSqrt2Pi = 0.3989422804014327;

double normPdf(double x) { return kInvSqrt2Pi * std::exp(-0.5 * x * x); }
double normCdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

/// Clark's approximation of max(X, Y) for independent Gaussians.
void clarkMax(double mu1, double var1, double mu2, double var2, double* mu,
              double* var) {
  const double a2 = var1 + var2;
  if (a2 < 1e-40) {
    *mu = std::max(mu1, mu2);
    *var = 0.0;
    return;
  }
  const double a = std::sqrt(a2);
  const double alpha = (mu1 - mu2) / a;
  const double phi = normPdf(alpha);
  const double cdf = normCdf(alpha);
  *mu = mu1 * cdf + mu2 * (1.0 - cdf) + a * phi;
  const double second = (var1 + mu1 * mu1) * cdf + (var2 + mu2 * mu2) * (1.0 - cdf) +
                        (mu1 + mu2) * a * phi;
  *var = std::max(second - (*mu) * (*mu), 0.0);
}

}  // namespace

StatTiming analyzeStatistical(const circuit::Netlist& netlist,
                              const tech::TechNode& node,
                              const SstaOptions& options) {
  // Positive form so a NaN sensitivity is rejected instead of silently
  // poisoning every sigma downstream.
  if (!(options.delaySensitivity >= 0)) {
    throw std::invalid_argument(
        "analyzeStatistical: sensitivity must be finite and >= 0");
  }
  const int n = netlist.nodeCount();
  StatTiming r;
  r.mean.assign(static_cast<std::size_t>(n), 0.0);
  std::vector<double> var(static_cast<std::size_t>(n), 0.0);

  const double unitWidth = options.unitDeviceWidth > 0
                               ? options.unitDeviceWidth
                               : 2.0 * node.featureNm * 1e-9;

  for (int i = 0; i < n; ++i) {
    const auto& nd = netlist.node(i);
    if (nd.kind != circuit::Netlist::NodeKind::Gate) continue;

    // MAX over fanins (Clark, pairwise).
    double mu = 0.0, v = 0.0;
    bool first = true;
    for (int f : nd.fanins) {
      const double fMu = r.mean[static_cast<std::size_t>(f)];
      const double fVar = var[static_cast<std::size_t>(f)];
      if (first) {
        mu = fMu;
        v = fVar;
        first = false;
      } else {
        clarkMax(mu, v, fMu, fVar, &mu, &v);
      }
    }

    // Gate contribution: mean delay plus Vth-mismatch sigma. Wider (higher
    // drive) gates average out mismatch: sigma ~ 1/sqrt(drive).
    const double d = nd.cell.delay(netlist.loadCap(i));
    const double width = unitWidth * std::max(nd.cell.drive, 0.1);
    const double sVth = device::vthSigma(node, width, options.pelgromAvt);
    const double sDelay = d * options.delaySensitivity * sVth;
    mu += d;
    v += sDelay * sDelay;

    r.mean[static_cast<std::size_t>(i)] = mu;
    var[static_cast<std::size_t>(i)] = v;
  }

  r.sigma.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    r.sigma[static_cast<std::size_t>(i)] =
        std::sqrt(var[static_cast<std::size_t>(i)]);
  }
  for (int id : netlist.outputs()) {
    if (r.mean[static_cast<std::size_t>(id)] >= r.criticalMean) {
      r.criticalMean = r.mean[static_cast<std::size_t>(id)];
      r.criticalSigma = r.sigma[static_cast<std::size_t>(id)];
    }
  }
  return r;
}

double timingYield(const circuit::Netlist& netlist, const StatTiming& timing,
                   double clockPeriod) {
  double yield = 1.0;
  for (int id : netlist.outputs()) {
    const double mu = timing.mean[static_cast<std::size_t>(id)];
    const double sg = timing.sigma[static_cast<std::size_t>(id)];
    if (sg <= 0.0) {
      if (mu > clockPeriod) return 0.0;
      continue;
    }
    yield *= normCdf((clockPeriod - mu) / sg);
  }
  return yield;
}

YieldMargin marginSigmasForYieldChecked(double yield) {
  YieldMargin out;
  out.diag.kernel = "sta/yield_margin";
  // NaN yields fail every comparison, so test for validity positively: the
  // old `yield <= 0 || yield >= 1` guard let NaN slip through to the solver.
  if (!(yield > 0.0 && yield < 1.0)) {
    out.sigmas = std::nan("");
    out.diag.status = std::isnan(yield) ? util::SolverStatus::NanDetected
                                        : util::SolverStatus::BracketFailure;
    out.diag.residual = std::nan("");
    return out;
  }
  // Invert the normal CDF by bracketed root finding; the fixed [-10, 10]
  // window brackets every representable yield in (0, 1), and a stalled
  // Brent step falls back to bisection inside tryBracketAndSolve.
  const util::SolveResult r = util::tryBracketAndSolve(
      [&](double x) { return normCdf(x) - yield; }, -10.0, 10.0, 0, 1e-10);
  out.sigmas = r.x;
  out.diag = r.diagnostics();
  out.diag.kernel = "sta/yield_margin";
  return out;
}

double marginSigmasForYield(double yield) {
  const YieldMargin m = marginSigmasForYieldChecked(yield);
  if (m.diag.status == util::SolverStatus::BracketFailure ||
      m.diag.status == util::SolverStatus::NanDetected) {
    throw std::invalid_argument("marginSigmasForYield: yield in (0,1)");
  }
  return m.sigmas;
}

}  // namespace nano::sta
