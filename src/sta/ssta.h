// Statistical STA (lite): propagates per-gate delay variability (from Vth
// mismatch via device/variation) through the netlist with Gaussian
// arrival models and Clark's MAX approximation. Quantifies the paper's
// Section-1 variability challenge at circuit level: how much clock margin
// a die needs once Vth fluctuates.
#pragma once

#include <vector>

#include "circuit/netlist.h"
#include "util/numeric.h"

namespace nano::sta {

/// Gaussian arrival model per node.
struct StatTiming {
  std::vector<double> mean;    ///< s
  std::vector<double> sigma;   ///< s
  double criticalMean = 0.0;   ///< worst endpoint mean
  double criticalSigma = 0.0;  ///< sigma of that endpoint
};

/// Options for the variability model.
struct SstaOptions {
  /// Relative delay sensitivity to Vth, 1/V: fractional delay change per
  /// volt of Vth shift (~1/Vgt above threshold; a few /V at low Vdd).
  double delaySensitivity = 2.0;
  /// Pelgrom coefficient, V*m (see device/variation).
  double pelgromAvt = 3.0e-9;
  /// Device width per unit drive used for the sigma estimate, m.
  double unitDeviceWidth = 0.0;  ///< 0: derived from the node feature size
};

/// Propagate means and sigmas. Gate delay sigma = mean delay *
/// delaySensitivity * sigmaVth(drive-dependent device width); fanin MAX is
/// combined with Clark's two-moment approximation (independence assumed).
StatTiming analyzeStatistical(const circuit::Netlist& netlist,
                              const tech::TechNode& node,
                              const SstaOptions& options = {});

/// Probability that every endpoint meets `clockPeriod` (independent-
/// endpoint approximation), i.e. parametric timing yield.
double timingYield(const circuit::Netlist& netlist, const StatTiming& timing,
                   double clockPeriod);

/// Structured outcome of the yield-margin inversion (kernel
/// "sta/yield_margin").
struct YieldMargin {
  double sigmas = 0.0;
  util::Diagnostics diag;
};

/// Checked normal-CDF inversion: never throws on numerical failure. A
/// yield outside (0, 1) — including NaN — reports NanDetected/
/// BracketFailure through the diagnostics instead of poisoning the root.
YieldMargin marginSigmasForYieldChecked(double yield);

/// Clock margin (in sigmas of the critical endpoint) needed for a target
/// yield: clock = criticalMean + marginSigmas(yield) * criticalSigma.
/// Throwing wrapper over marginSigmasForYieldChecked().
double marginSigmasForYield(double yield);

}  // namespace nano::sta
