// Incremental static timing: arrival/required/slack state over a
// circuit::Netlist that repropagates only the affected cones when a gate's
// cell is swapped. A cell swap at gate g changes the delay of g and of g's
// fanin drivers (their load includes g's input cap); arrivals then change
// only inside the fanout cones of those gates, and required times only
// inside their fanin cones. Both cones are walked in topological order
// with early termination the moment a recomputed value stops changing, so
// a trial move costs O(cone) instead of the O(gates) of a full
// sta::analyze — the difference between O(n^2) and near-O(n) optimizer
// passes (paper Sections 2.3-3.3).
//
// Storage: the engine mirrors the netlist into a cell-less NetlistSoA at
// construction/rebuild and walks flat CSR adjacency + delay-parameter
// arrays during trials — no per-node pointer chasing — while every cell
// swap is applied to the object netlist and the mirror in lockstep.
// Steady-state trials allocate nothing: the worklist, journal and epoch
// arrays persist across trials and the mirror lives in an arena.
//
// Every per-node recomputation uses the same operations and summation
// order as sta::analyze, and the default epsilon of 0 terminates on exact
// equality, so the engine's state is bit-identical to a fresh full
// analysis at all times. The optimizers rely on this: porting them onto
// trial()/commit()/rollback() changes their wall time, not their results.
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/netlist.h"
#include "circuit/netlist_soa.h"
#include "sta/sta.h"

namespace nano::sta {

/// Levelized timing engine with O(cone) cell-swap repropagation and
/// trial/commit/rollback. Binds to a netlist by reference: the caller
/// keeps the netlist alive and routes all cell swaps through the engine
/// (external edits require rebuild()).
class IncrementalSta {
 public:
  /// Times `netlist` against `clockPeriod`; pass <= 0 to freeze the clock
  /// at the initial critical-path delay (like sta::analyze, but the clock
  /// then stays fixed across subsequent swaps). `epsilon`: arrival /
  /// required changes with |new - old| <= epsilon stop propagating; the
  /// default 0 keeps the state exactly equal to a full reanalysis.
  explicit IncrementalSta(circuit::Netlist& netlist, double clockPeriod = -1.0,
                          double epsilon = 0.0);

  /// Seed from an already computed full analysis of `netlist` (same
  /// netlist, same clock) instead of re-running one — the optimizers hand
  /// over their timingBefore. The seed must cover every node.
  IncrementalSta(circuit::Netlist& netlist, const TimingResult& seed,
                 double epsilon = 0.0);

  [[nodiscard]] double clockPeriod() const { return clock_; }
  [[nodiscard]] double arrival(int id) const {
    return arrival_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] double required(int id) const {
    return required_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] double slack(int id) const {
    return slack_[static_cast<std::size_t>(id)];
  }
  /// Minimum endpoint slack (infinity when the netlist has no outputs).
  [[nodiscard]] double worstSlack() const;
  [[nodiscard]] bool meetsTiming(double tolerance = 1e-15) const {
    return worstSlack() >= -tolerance;
  }

  /// Swap `gate`'s cell and repropagate the affected cones, journaling
  /// every touched value. Exactly one trial may be pending at a time.
  void trial(int gate, circuit::Cell cell);
  /// Keep the pending trial.
  void commit();
  /// Undo the pending trial: restores the cell (and the netlist's load-cap
  /// cache) and every journaled timing value.
  void rollback();
  /// trial + commit for unconditional moves.
  void apply(int gate, circuit::Cell cell);
  [[nodiscard]] bool hasPendingTrial() const { return pending_; }

  /// Critical path (input -> endpoint) with sta::analyze's tie-breaking:
  /// the last maximum wins among endpoints and among fanins.
  [[nodiscard]] std::vector<int> criticalPath() const;

  /// Snapshot as a full TimingResult, bit-identical to
  /// sta::analyze(netlist, clockPeriod()) on the current netlist.
  [[nodiscard]] TimingResult exportResult() const;

  /// Recompute everything from scratch (after netlist edits that bypassed
  /// the engine, e.g. structural changes). Reuses the SoA mirror's arena.
  void rebuild();

  /// Nodes repropagated over this engine's lifetime — the incremental
  /// work metric (compare against nodeCount() x trials for the full-STA
  /// equivalent).
  [[nodiscard]] std::int64_t nodesRepropagated() const { return repropagated_; }

 private:
  void bindState(std::vector<double> arrival, std::vector<double> required,
                 std::vector<double> slack);
  void propagateDelayChange(const std::vector<int>& delayChanged);
  /// Journal (id, arrival, required, slack) once per trial.
  void save(int id);
  [[nodiscard]] double recomputeArrival(int id) const;
  [[nodiscard]] double recomputeRequired(int id) const;

  circuit::Netlist* netlist_;
  circuit::NetlistSoA soa_;  ///< cell-less flat mirror, arena-backed
  double clock_ = 0.0;
  double epsilon_ = 0.0;
  std::vector<double> arrival_;
  std::vector<double> required_;
  std::vector<double> slack_;

  // Pending-trial journal.
  struct Saved {
    int id;
    double arrival, required, slack;
  };
  std::vector<Saved> journal_;
  std::vector<std::uint32_t> mark_;  ///< == epoch_ if journaled this trial
  std::uint32_t epoch_ = 0;
  bool pending_ = false;
  int pendingGate_ = -1;
  circuit::Cell savedCell_;

  // Worklist scratch (kept allocated across trials).
  std::vector<int> heap_;
  std::vector<std::uint32_t> queued_;  ///< == queueEpoch_ if in worklist
  std::uint32_t queueEpoch_ = 0;

  std::int64_t repropagated_ = 0;
};

}  // namespace nano::sta
