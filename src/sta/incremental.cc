#include "sta/incremental.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <stdexcept>

#include "obs/obs.h"

namespace nano::sta {

using circuit::Netlist;

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

IncrementalSta::IncrementalSta(Netlist& netlist, double clockPeriod,
                               double epsilon)
    : netlist_(&netlist), clock_(clockPeriod), epsilon_(epsilon) {
  if (epsilon < 0) {
    throw std::invalid_argument("IncrementalSta: negative epsilon");
  }
  rebuild();
}

IncrementalSta::IncrementalSta(Netlist& netlist, const TimingResult& seed,
                               double epsilon)
    : netlist_(&netlist), clock_(seed.clockPeriod), epsilon_(epsilon) {
  if (epsilon < 0) {
    throw std::invalid_argument("IncrementalSta: negative epsilon");
  }
  if (seed.clockPeriod <= 0) {
    throw std::invalid_argument("IncrementalSta: seed has no clock period");
  }
  const auto n = static_cast<std::size_t>(netlist.nodeCount());
  if (seed.arrival.size() != n || seed.required.size() != n ||
      seed.slack.size() != n) {
    throw std::invalid_argument(
        "IncrementalSta: seed result does not cover the netlist");
  }
  soa_.rebuild(*netlist_, {.keepCells = false});
  bindState(seed.arrival, seed.required, seed.slack);
}

void IncrementalSta::rebuild() {
  if (pending_) {
    throw std::logic_error("IncrementalSta::rebuild: trial pending");
  }
  soa_.rebuild(*netlist_, {.keepCells = false});
  TimingResult r = analyze(soa_, clock_ > 0 ? clock_ : -1.0);
  clock_ = r.clockPeriod;  // resolved to the critical delay when <= 0
  bindState(std::move(r.arrival), std::move(r.required), std::move(r.slack));
}

void IncrementalSta::bindState(std::vector<double> arrival,
                               std::vector<double> required,
                               std::vector<double> slack) {
  arrival_ = std::move(arrival);
  required_ = std::move(required);
  slack_ = std::move(slack);
  const std::size_t n = arrival_.size();
  mark_.assign(n, 0);
  queued_.assign(n, 0);
  epoch_ = 0;
  queueEpoch_ = 0;
  journal_.clear();
  pending_ = false;
  pendingGate_ = -1;
}

double IncrementalSta::recomputeArrival(int id) const {
  const auto u = static_cast<std::uint32_t>(id);
  if (!soa_.isGate(u)) return 0.0;
  // Same clamp-at-zero max as sta::analyze's forward pass.
  double worst = 0.0;
  for (const std::uint32_t f : soa_.fanins(u)) {
    const double a = arrival_[f];
    if (a >= worst) worst = a;
  }
  return worst + soa_.gateDelay(u);
}

double IncrementalSta::recomputeRequired(int id) const {
  const auto u = static_cast<std::uint32_t>(id);
  double req = soa_.isOutput(u) ? clock_ : kInf;
  for (const std::uint32_t fo : soa_.fanouts(u)) {
    req = std::min(req, required_[fo] - soa_.gateDelay(fo));
  }
  return req;
}

double IncrementalSta::worstSlack() const {
  double worst = kInf;
  for (const std::uint32_t id : soa_.outputs()) {
    worst = std::min(worst, slack_[id]);
  }
  return worst;
}

void IncrementalSta::save(int id) {
  auto& m = mark_[static_cast<std::size_t>(id)];
  if (m == epoch_) return;
  m = epoch_;
  const auto i = static_cast<std::size_t>(id);
  journal_.push_back({id, arrival_[i], required_[i], slack_[i]});
}

void IncrementalSta::trial(int gate, circuit::Cell cell) {
  if (pending_) {
    throw std::logic_error(
        "IncrementalSta::trial: a trial is already pending; commit or "
        "rollback first");
  }
  const auto& node = netlist_->node(gate);
  if (node.kind != Netlist::NodeKind::Gate) {
    throw std::invalid_argument("IncrementalSta::trial: not a gate");
  }
  pending_ = true;
  pendingGate_ = gate;
  savedCell_ = node.cell;
  ++epoch_;
  if (epoch_ == 0) {  // epoch wrapped: stale marks could collide
    std::fill(mark_.begin(), mark_.end(), 0u);
    epoch_ = 1;
  }
  journal_.clear();

  // Delay changes at the swapped gate and at its fanin drivers, whose
  // load includes the swapped cell's input cap.
  const auto g = static_cast<std::uint32_t>(gate);
  std::vector<int> delayChanged;
  delayChanged.reserve(soa_.fanins(g).size() + 1);
  for (const std::uint32_t f : soa_.fanins(g)) {
    if (soa_.isGate(f)) delayChanged.push_back(static_cast<int>(f));
  }
  delayChanged.push_back(gate);

  // Object netlist first (replaceCell validates the swap and throws
  // before mutating), then the mirror — both refresh the fanin load caps
  // with the same summation order, so they stay bit-identical.
  netlist_->replaceCell(gate, cell);
  soa_.setCell(g, cell);
  const std::int64_t before = repropagated_;
  propagateDelayChange(delayChanged);
  NANO_OBS_COUNT("sta/incremental_trials", 1);
  NANO_OBS_COUNT("sta/incremental_nodes_repropagated", repropagated_ - before);
}

void IncrementalSta::propagateDelayChange(const std::vector<int>& delayChanged) {
  auto bumpQueueEpoch = [&] {
    ++queueEpoch_;
    if (queueEpoch_ == 0) {
      std::fill(queued_.begin(), queued_.end(), 0u);
      queueEpoch_ = 1;
    }
  };

  // Forward: arrivals through the fanout cones. A min-heap over node ids
  // is a topological order (fanins always have smaller ids), so each node
  // is finalized in one visit; propagation stops where the recomputed
  // arrival matches the stored one within epsilon.
  bumpQueueEpoch();
  heap_.clear();
  auto pushForward = [&](int id) {
    auto& q = queued_[static_cast<std::size_t>(id)];
    if (q == queueEpoch_) return;
    q = queueEpoch_;
    heap_.push_back(id);
    std::push_heap(heap_.begin(), heap_.end(), std::greater<int>());
  };
  for (int id : delayChanged) pushForward(id);
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<int>());
    const int id = heap_.back();
    heap_.pop_back();
    ++repropagated_;
    const double updated = recomputeArrival(id);
    const double old = arrival_[static_cast<std::size_t>(id)];
    if (std::abs(updated - old) > epsilon_) {
      save(id);
      arrival_[static_cast<std::size_t>(id)] = updated;
      for (const std::uint32_t fo :
           soa_.fanouts(static_cast<std::uint32_t>(id))) {
        pushForward(static_cast<int>(fo));
      }
    }
  }

  // Backward: required times through the fanin cones (required depends on
  // gate delays and the clock, not on arrivals, so the two passes are
  // independent). A max-heap over ids is reverse-topological.
  bumpQueueEpoch();
  heap_.clear();
  auto pushBackward = [&](int id) {
    auto& q = queued_[static_cast<std::size_t>(id)];
    if (q == queueEpoch_) return;
    q = queueEpoch_;
    heap_.push_back(id);
    std::push_heap(heap_.begin(), heap_.end());
  };
  for (int d : delayChanged) {
    for (const std::uint32_t f : soa_.fanins(static_cast<std::uint32_t>(d))) {
      pushBackward(static_cast<int>(f));
    }
  }
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end());
    const int id = heap_.back();
    heap_.pop_back();
    ++repropagated_;
    const double updated = recomputeRequired(id);
    const double old = required_[static_cast<std::size_t>(id)];
    // Infinities (unconstrained nodes) compare exactly; inf - inf is NaN.
    const bool changed = (updated == kInf || old == kInf)
                             ? updated != old
                             : std::abs(updated - old) > epsilon_;
    if (changed) {
      save(id);
      required_[static_cast<std::size_t>(id)] = updated;
      for (const std::uint32_t f :
           soa_.fanins(static_cast<std::uint32_t>(id))) {
        pushBackward(static_cast<int>(f));
      }
    }
  }

  // Slack changes exactly where arrival or required changed — the
  // journaled set.
  for (const Saved& s : journal_) {
    const auto i = static_cast<std::size_t>(s.id);
    slack_[i] = (required_[i] == kInf) ? clock_ : required_[i] - arrival_[i];
  }
}

void IncrementalSta::commit() {
  if (!pending_) {
    throw std::logic_error("IncrementalSta::commit: no pending trial");
  }
  journal_.clear();
  pending_ = false;
  pendingGate_ = -1;
}

void IncrementalSta::rollback() {
  if (!pending_) {
    throw std::logic_error("IncrementalSta::rollback: no pending trial");
  }
  // Restoring the cell also restores both load-cap caches (same recompute
  // path), so engine, mirror and netlist rewind together.
  netlist_->replaceCell(pendingGate_, savedCell_);
  soa_.setCell(static_cast<std::uint32_t>(pendingGate_), savedCell_);
  for (const Saved& s : journal_) {
    const auto i = static_cast<std::size_t>(s.id);
    arrival_[i] = s.arrival;
    required_[i] = s.required;
    slack_[i] = s.slack;
  }
  journal_.clear();
  pending_ = false;
  pendingGate_ = -1;
}

void IncrementalSta::apply(int gate, circuit::Cell cell) {
  trial(gate, std::move(cell));
  commit();
}

std::vector<int> IncrementalSta::criticalPath() const {
  // Mirrors sta::analyze exactly: last maximum wins (>=) among endpoints
  // and among fanins, walk stops at a primary input.
  double critical = 0.0;
  int end = -1;
  for (const std::uint32_t id : soa_.outputs()) {
    if (arrival_[id] >= critical) {
      critical = arrival_[id];
      end = static_cast<int>(id);
    }
  }
  std::vector<int> path;
  if (end < 0) return path;
  for (int cur = end; cur >= 0;) {
    path.push_back(cur);
    const auto u = static_cast<std::uint32_t>(cur);
    if (!soa_.isGate(u)) break;
    double worst = 0.0;
    int worstId = -1;
    for (const std::uint32_t f : soa_.fanins(u)) {
      if (arrival_[f] >= worst) {
        worst = arrival_[f];
        worstId = static_cast<int>(f);
      }
    }
    cur = worstId;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

TimingResult IncrementalSta::exportResult() const {
  TimingResult r;
  r.clockPeriod = clock_;
  r.arrival = arrival_;
  r.required = required_;
  r.slack = slack_;
  double critical = 0.0;
  for (const std::uint32_t id : soa_.outputs()) {
    critical = std::max(critical, arrival_[id]);
  }
  r.criticalPathDelay = critical;
  r.worstSlack = worstSlack();
  r.criticalPath = criticalPath();
  return r;
}

}  // namespace nano::sta
