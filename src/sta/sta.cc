#include "sta/sta.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "exec/exec.h"
#include "obs/obs.h"

namespace nano::sta {

using circuit::Netlist;
using circuit::NetlistSoA;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Levels at least this big sweep through the exec pool; smaller ones run
/// serially (same bits either way — every node writes only its own slot).
constexpr std::size_t kParallelLevelThreshold = 1024;

}  // namespace

const TimingResult& Sta::analyze(double clockPeriod) {
  NANO_OBS_SPAN("sta/analyze");
  const NetlistSoA& soa = *soa_;
  const std::size_t n = soa.nodeCount();
  NANO_OBS_COUNT("sta/analyze_calls", 1);
  NANO_OBS_COUNT("sta/nodes_timed", static_cast<std::int64_t>(n));

  if (worstFanin_ == nullptr) {
    worstFanin_ = arena_.allocateArray<std::int32_t>(n);
  }
  result_.arrival.assign(n, 0.0);
  result_.required.assign(n, kInf);
  result_.slack.assign(n, 0.0);
  result_.criticalPath.clear();

  ctx_.soa = &soa;
  ctx_.order = soa.order().data();
  ctx_.arrival = result_.arrival.data();
  ctx_.required = result_.required.data();
  ctx_.slack = result_.slack.data();
  ctx_.worstFanin = worstFanin_;
  SweepCtx* const ctx = &ctx_;

  const auto levelOffsets = soa.levelOffsets();
  const std::uint32_t levels = soa.levelCount();

  // Forward pass, level by level: a node's arrival reads only strictly
  // shallower levels, so the nodes of one level are independent. The
  // per-node arithmetic (fanin order, >= tie-break, delay expression) is
  // exactly the historical object-walking loop's.
  const auto forwardRange = [ctx](std::size_t b, std::size_t e) {
    const NetlistSoA& s = *ctx->soa;
    for (std::size_t k = b; k < e; ++k) {
      const std::uint32_t id = ctx->order[ctx->base + k];
      if (!s.isGate(id)) {
        ctx->worstFanin[id] = -1;
        continue;
      }
      double worst = 0.0;
      std::int32_t worstId = -1;
      for (const std::uint32_t f : s.fanins(id)) {
        if (ctx->arrival[f] >= worst) {
          worst = ctx->arrival[f];
          worstId = static_cast<std::int32_t>(f);
        }
      }
      ctx->arrival[id] = worst + s.gateDelay(id);
      ctx->worstFanin[id] = worstId;
    }
  };
  for (std::uint32_t l = 0; l < levels; ++l) {
    const std::size_t begin = levelOffsets[l];
    const std::size_t count = levelOffsets[l + 1] - begin;
    ctx_.base = begin;
    if (count >= kParallelLevelThreshold) {
      exec::parallelForBlocked(count, forwardRange);
    } else {
      forwardRange(0, count);
    }
  }

  // Critical endpoint / path delay (endpoint order preserved from the
  // object netlist; last maximum wins, as before).
  double critical = 0.0;
  std::int32_t criticalEnd = -1;
  for (const std::uint32_t id : soa.outputs()) {
    if (result_.arrival[id] >= critical) {
      critical = result_.arrival[id];
      criticalEnd = static_cast<std::int32_t>(id);
    }
  }
  result_.criticalPathDelay = critical;
  result_.clockPeriod = clockPeriod > 0 ? clockPeriod : critical;
  ctx_.clock = result_.clockPeriod;

  // Backward pass, deepest level first: a node's required time reads only
  // strictly deeper levels (its consumers). The historical scatter-min is
  // re-expressed as a gather; min over doubles is exact, so the result is
  // bit-identical regardless of accumulation order.
  const auto backwardRange = [ctx](std::size_t b, std::size_t e) {
    const NetlistSoA& s = *ctx->soa;
    for (std::size_t k = b; k < e; ++k) {
      const std::uint32_t id = ctx->order[ctx->base + k];
      double req = s.isOutput(id) ? ctx->clock : kInf;
      for (const std::uint32_t fo : s.fanouts(id)) {
        req = std::min(req, ctx->required[fo] - s.gateDelay(fo));
      }
      ctx->required[id] = req;
    }
  };
  for (std::uint32_t l = levels; l-- > 0;) {
    const std::size_t begin = levelOffsets[l];
    const std::size_t count = levelOffsets[l + 1] - begin;
    ctx_.base = begin;
    if (count >= kParallelLevelThreshold) {
      exec::parallelForBlocked(count, backwardRange);
    } else {
      backwardRange(0, count);
    }
  }

  // Slack.
  const auto slackRange = [ctx](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      const double req = ctx->required[i];
      ctx->slack[i] = (req == kInf) ? ctx->clock : req - ctx->arrival[i];
    }
  };
  if (n >= kParallelLevelThreshold) {
    exec::parallelForBlocked(n, slackRange);
  } else {
    slackRange(0, n);
  }

  // Worst endpoint slack and critical path extraction.
  result_.worstSlack = kInf;
  for (const std::uint32_t id : soa.outputs()) {
    result_.worstSlack = std::min(result_.worstSlack, result_.slack[id]);
  }
  if (criticalEnd >= 0) {
    for (std::int32_t cur = criticalEnd; cur >= 0;
         cur = worstFanin_[static_cast<std::uint32_t>(cur)]) {
      result_.criticalPath.push_back(cur);
      if (!soa.isGate(static_cast<std::uint32_t>(cur))) break;
    }
    std::reverse(result_.criticalPath.begin(), result_.criticalPath.end());
  }

  NANO_OBS_GAUGE("sta/arena_bytes", static_cast<double>(arenaBytes()));
  return result_;
}

TimingResult analyze(const NetlistSoA& soa, double clockPeriod) {
  Sta engine(soa);
  return engine.analyze(clockPeriod);
}

TimingResult analyze(const Netlist& netlist, double clockPeriod) {
  const NetlistSoA soa(netlist, {.keepCells = false});
  return analyze(soa, clockPeriod);
}

std::vector<double> endpointArrivals(const Netlist& netlist) {
  const TimingResult r = analyze(netlist);
  std::vector<double> out;
  out.reserve(netlist.outputs().size());
  for (int id : netlist.outputs()) {
    out.push_back(r.arrival[static_cast<std::size_t>(id)]);
  }
  return out;
}

double fractionOfPathsFasterThan(const TimingResult& timing,
                                 const Netlist& netlist, double fraction) {
  if (netlist.outputs().empty()) {
    throw std::invalid_argument("fractionOfPathsFasterThan: no endpoints");
  }
  const double threshold = fraction * timing.clockPeriod;
  int count = 0;
  for (int id : netlist.outputs()) {
    if (timing.arrival[static_cast<std::size_t>(id)] < threshold) ++count;
  }
  return static_cast<double>(count) /
         static_cast<double>(netlist.outputs().size());
}

util::Histogram pathDelayHistogram(const TimingResult& timing,
                                   const Netlist& netlist, int bins) {
  util::Histogram h(0.0, 1.0, bins);
  for (int id : netlist.outputs()) {
    h.add(timing.arrival[static_cast<std::size_t>(id)] / timing.clockPeriod);
  }
  return h;
}

}  // namespace nano::sta
