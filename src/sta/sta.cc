#include "sta/sta.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "obs/obs.h"

namespace nano::sta {

using circuit::Netlist;

TimingResult analyze(const Netlist& netlist, double clockPeriod) {
  NANO_OBS_SPAN("sta/analyze");
  const int n = netlist.nodeCount();
  NANO_OBS_COUNT("sta/analyze_calls", 1);
  NANO_OBS_COUNT("sta/nodes_timed", n);
  TimingResult r;
  r.arrival.assign(static_cast<std::size_t>(n), 0.0);
  r.required.assign(static_cast<std::size_t>(n),
                    std::numeric_limits<double>::infinity());
  r.slack.assign(static_cast<std::size_t>(n), 0.0);

  // Forward pass (node order is topological by construction).
  std::vector<int> worstFanin(static_cast<std::size_t>(n), -1);
  for (int i = 0; i < n; ++i) {
    const auto& node = netlist.node(i);
    if (node.kind != Netlist::NodeKind::Gate) continue;
    double worst = 0.0;
    int worstId = -1;
    for (int f : node.fanins) {
      if (r.arrival[static_cast<std::size_t>(f)] >= worst) {
        worst = r.arrival[static_cast<std::size_t>(f)];
        worstId = f;
      }
    }
    const double delay = node.cell.delay(netlist.loadCap(i));
    r.arrival[static_cast<std::size_t>(i)] = worst + delay;
    worstFanin[static_cast<std::size_t>(i)] = worstId;
  }

  // Critical endpoint / path delay.
  double critical = 0.0;
  int criticalEnd = -1;
  for (int id : netlist.outputs()) {
    if (r.arrival[static_cast<std::size_t>(id)] >= critical) {
      critical = r.arrival[static_cast<std::size_t>(id)];
      criticalEnd = id;
    }
  }
  r.criticalPathDelay = critical;
  r.clockPeriod = clockPeriod > 0 ? clockPeriod : critical;

  // Backward pass.
  for (int id : netlist.outputs()) {
    r.required[static_cast<std::size_t>(id)] = r.clockPeriod;
  }
  for (int i = n; i-- > 0;) {
    const auto& node = netlist.node(i);
    for (int f : node.fanins) {
      const double delay =
          node.kind == Netlist::NodeKind::Gate
              ? node.cell.delay(netlist.loadCap(i))
              : 0.0;
      r.required[static_cast<std::size_t>(f)] =
          std::min(r.required[static_cast<std::size_t>(f)],
                   r.required[static_cast<std::size_t>(i)] - delay);
    }
  }
  for (int i = 0; i < n; ++i) {
    const double req = r.required[static_cast<std::size_t>(i)];
    r.slack[static_cast<std::size_t>(i)] =
        (req == std::numeric_limits<double>::infinity())
            ? r.clockPeriod  // dangling node: unconstrained
            : req - r.arrival[static_cast<std::size_t>(i)];
  }

  // Worst endpoint slack and critical path extraction.
  r.worstSlack = std::numeric_limits<double>::infinity();
  for (int id : netlist.outputs()) {
    r.worstSlack = std::min(r.worstSlack, r.slack[static_cast<std::size_t>(id)]);
  }
  if (criticalEnd >= 0) {
    for (int cur = criticalEnd; cur >= 0;
         cur = worstFanin[static_cast<std::size_t>(cur)]) {
      r.criticalPath.push_back(cur);
      if (netlist.node(cur).kind == Netlist::NodeKind::PrimaryInput) break;
    }
    std::reverse(r.criticalPath.begin(), r.criticalPath.end());
  }
  return r;
}

std::vector<double> endpointArrivals(const Netlist& netlist) {
  const TimingResult r = analyze(netlist);
  std::vector<double> out;
  out.reserve(netlist.outputs().size());
  for (int id : netlist.outputs()) {
    out.push_back(r.arrival[static_cast<std::size_t>(id)]);
  }
  return out;
}

double fractionOfPathsFasterThan(const TimingResult& timing,
                                 const Netlist& netlist, double fraction) {
  if (netlist.outputs().empty()) {
    throw std::invalid_argument("fractionOfPathsFasterThan: no endpoints");
  }
  const double threshold = fraction * timing.clockPeriod;
  int count = 0;
  for (int id : netlist.outputs()) {
    if (timing.arrival[static_cast<std::size_t>(id)] < threshold) ++count;
  }
  return static_cast<double>(count) /
         static_cast<double>(netlist.outputs().size());
}

util::Histogram pathDelayHistogram(const TimingResult& timing,
                                   const Netlist& netlist, int bins) {
  util::Histogram h(0.0, 1.0, bins);
  for (int id : netlist.outputs()) {
    h.add(timing.arrival[static_cast<std::size_t>(id)] / timing.clockPeriod);
  }
  return h;
}

}  // namespace nano::sta
