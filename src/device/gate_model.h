// Gate-level abstraction on top of the compact MOSFET model: input/output
// capacitance, switching delay, dynamic energy and leakage power of a
// static CMOS inverter (the paper's reference gate: Wn/L = 4, Wp/L = 8,
// fan-out of 4 plus an average wiring load; see Figure 1 footnote 6).
#pragma once

#include "device/mosfet.h"
#include "tech/itrs.h"

namespace nano::device {

/// Geometry of a static CMOS gate in multiples of the drawn channel length.
struct GateGeometry {
  double wnOverL = 4.0;  ///< NMOS width / L (paper footnote 6)
  double wpOverL = 8.0;  ///< PMOS width / L
};

/// Static CMOS inverter characterized from a technology node, an NMOS Vth
/// and an operating point (Vdd, temperature). The PMOS is modeled as an
/// NMOS with kPmosCurrentFactor per-width drive and symmetric Vth.
class InverterModel {
 public:
  /// `vth` is the NMOS saturation threshold specified at `vddOperating`
  /// (i.e. the DIBL reference is the operating supply of this instance).
  InverterModel(const tech::TechNode& node, double vth, double vddOperating,
                GateGeometry geometry = {}, double temperature = 300.0,
                GateStack stack = GateStack::Poly);

  [[nodiscard]] const tech::TechNode& node() const { return *node_; }
  [[nodiscard]] const Mosfet& nmos() const { return nmos_; }
  [[nodiscard]] double vdd() const { return vdd_; }

  /// NMOS / PMOS widths, m.
  [[nodiscard]] double wn() const { return wn_; }
  [[nodiscard]] double wp() const { return wp_; }

  /// Gate input capacitance (channel + overlap), F.
  [[nodiscard]] double inputCap() const;
  /// Parasitic output (junction + Miller) capacitance, F.
  [[nodiscard]] double outputCap() const;

  /// Pull-down (NMOS) drive current at Vgs = Vdd, A.
  [[nodiscard]] double driveCurrentN() const;
  /// Pull-up (PMOS) drive current magnitude at |Vgs| = Vdd, A.
  [[nodiscard]] double driveCurrentP() const;

  /// Propagation delay driving `loadCap` (external load; self-loading is
  /// added internally): average of rise and fall, s.
  [[nodiscard]] double delay(double loadCap) const;

  /// FO4 delay with an optional extra wire load, s.
  [[nodiscard]] double fo4Delay(double wireCap = 0.0) const;

  /// Energy drawn from the supply per output transition pair driving
  /// `loadCap` (i.e. C_total * Vdd^2), J.
  [[nodiscard]] double switchingEnergy(double loadCap) const;

  /// Average dynamic power at clock `freq` and switching-activity factor
  /// `activity` (transitions per cycle), driving `loadCap`, W.
  [[nodiscard]] double dynamicPower(double loadCap, double freq,
                                    double activity) const;

  /// State-averaged leakage power: half the time the NMOS leaks, half the
  /// time the PMOS does, W.
  [[nodiscard]] double leakagePower() const;

 private:
  const tech::TechNode* node_;
  Mosfet nmos_;
  double vdd_;
  double wn_;
  double wp_;
};

/// FO4-with-average-wire inverter for a roadmap node at its nominal supply
/// and the Vth that meets the node's Ion target; the building block of
/// Figure 1.
InverterModel referenceInverter(const tech::TechNode& node,
                                double temperature = 300.0);

/// Ratio of static to dynamic power for the reference inverter at a given
/// switching activity (Figure 1's y-axis). `vddOverride` selects the
/// 50 nm @ 0.7 V variant; the clock is the node's local clock.
double staticToDynamicRatio(const tech::TechNode& node, double activity,
                            double temperature, double vddOverride = -1.0);

}  // namespace nano::device
