#include "device/gate_model.h"

#include <stdexcept>

#include "util/units.h"

namespace nano::device {

using namespace nano::units;

namespace {
// Gate capacitance overhead for overlap + Miller coupling, as a fraction of
// the intrinsic channel capacitance.
constexpr double kOverlapFraction = 0.4;
// Output junction + Miller parasitic as a fraction of the input capacitance.
constexpr double kSelfLoadFraction = 0.6;
// Switching-resistance model: Req = 3/4 * Vdd / Idsat (Rabaey), step input;
// the slope factor accounts for non-ideal input edges.
constexpr double kReqFactor = 0.75;
constexpr double kSlopeFactor = 1.5;
constexpr double kLn2 = 0.6931471805599453;

MosfetParams nodeParams(const tech::TechNode& node, double vth, double vdd,
                        double temperature, GateStack stack) {
  MosfetParams p;
  p.toxPhysical = node.toxPhysical;
  p.gateStack = stack;
  p.leff = node.leff;
  p.vthNominal = vth;
  p.vddReference = vdd;
  p.rsOhmM = node.rsSourceOhmM;
  p.dibl = node.dibl;
  p.swing300K = node.subthresholdSwing;
  p.temperature = temperature;
  return p;
}
}  // namespace

InverterModel::InverterModel(const tech::TechNode& node, double vth,
                             double vddOperating, GateGeometry geometry,
                             double temperature, GateStack stack)
    : node_(&node),
      nmos_(nodeParams(node, vth, vddOperating, temperature, stack)),
      vdd_(vddOperating) {
  if (vddOperating <= 0) throw std::invalid_argument("InverterModel: Vdd <= 0");
  const double drawnL = node.featureNm * nm;
  wn_ = geometry.wnOverL * drawnL;
  wp_ = geometry.wpOverL * drawnL;
}

double InverterModel::inputCap() const {
  const double channelArea = (wn_ + wp_) * nmos_.params().leff;
  return nmos_.coxElectrical() * channelArea * (1.0 + kOverlapFraction);
}

double InverterModel::outputCap() const { return kSelfLoadFraction * inputCap(); }

double InverterModel::driveCurrentN() const {
  return nmos_.ionSelfConsistent(vdd_) * wn_;
}

double InverterModel::driveCurrentP() const {
  return kPmosCurrentFactor * nmos_.ionSelfConsistent(vdd_) * wp_;
}

double InverterModel::delay(double loadCap) const {
  const double ctot = loadCap + outputCap();
  const double reqN = kReqFactor * vdd_ / driveCurrentN();
  const double reqP = kReqFactor * vdd_ / driveCurrentP();
  const double reqAvg = 0.5 * (reqN + reqP);
  return kLn2 * kSlopeFactor * reqAvg * ctot;
}

double InverterModel::fo4Delay(double wireCap) const {
  return delay(4.0 * inputCap() + wireCap);
}

double InverterModel::switchingEnergy(double loadCap) const {
  const double ctot = loadCap + outputCap();
  return ctot * vdd_ * vdd_;
}

double InverterModel::dynamicPower(double loadCap, double freq,
                                   double activity) const {
  return activity * switchingEnergy(loadCap) * freq;
}

double InverterModel::leakagePower() const {
  // The output sits high (NMOS leaking) or low (PMOS leaking) with equal
  // probability; PMOS per-width leakage follows its weaker drive.
  const double ioffPerWidth = nmos_.ioff(vdd_);
  const double widthEff = 0.5 * (wn_ + kPmosCurrentFactor * wp_);
  return vdd_ * ioffPerWidth * widthEff;
}

InverterModel referenceInverter(const tech::TechNode& node, double temperature) {
  const double vth = solveVthForIon(node, node.ionTarget);
  return InverterModel(node, vth, node.vdd, GateGeometry{}, temperature);
}

double staticToDynamicRatio(const tech::TechNode& node, double activity,
                            double temperature, double vddOverride) {
  if (activity <= 0) throw std::invalid_argument("staticToDynamicRatio: activity <= 0");
  const double vdd = vddOverride > 0 ? vddOverride : node.vdd;
  // The device is designed to meet the Ion target at its actual operating
  // supply (the paper re-solves Vth for the 50 nm @ 0.7 V variant).
  const double vth = solveVthForIon(node, node.ionTarget, GateStack::Poly, vdd);
  const InverterModel inv(node, vth, vdd, GateGeometry{}, temperature);
  const double wireCap = node.localWireCapPerM * node.avgLocalWireLength;
  const double load = 4.0 * inv.inputCap() + wireCap;
  const double pdyn = inv.dynamicPower(load, node.clockLocal, activity);
  return inv.leakagePower() / pdyn;
}

}  // namespace nano::device
