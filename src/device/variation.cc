#include "device/variation.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/stats.h"

namespace nano::device {

double vthSigma(const tech::TechNode& node, double width, double avt) {
  if (width <= 0) throw std::invalid_argument("vthSigma: width <= 0");
  return avt / std::sqrt(width * node.leff);
}

double meanLeakageAmplification(double sigma, double swing) {
  if (swing <= 0) throw std::invalid_argument("meanLeakageAmplification: swing");
  const double s = sigma * std::log(10.0) / swing;
  return std::exp(0.5 * s * s);
}

LeakageSpread sampleLeakageSpread(const tech::TechNode& node, double vth,
                                  double width, util::Rng& rng, int samples,
                                  double avt) {
  if (samples < 2) throw std::invalid_argument("sampleLeakageSpread: samples");
  LeakageSpread out;
  out.sigmaVth = vthSigma(node, width, avt);
  out.samples = samples;

  const Mosfet nominal = Mosfet::fromNode(node, vth);
  const double ioffNominal = nominal.ioff();
  const double swing = nominal.subthresholdSwing();

  std::vector<double> draws;
  draws.reserve(static_cast<std::size_t>(samples));
  double sum = 0.0;
  for (int i = 0; i < samples; ++i) {
    const double dv = rng.normal(0.0, out.sigmaVth);
    // Eq. (4) shift: one decade per swing of Vth.
    const double ioff = ioffNominal * std::pow(10.0, -dv / swing);
    draws.push_back(ioff / ioffNominal);
    sum += ioff / ioffNominal;
  }
  out.meanAmplification = sum / samples;
  out.p95Amplification = util::percentile(draws, 95.0);
  return out;
}

double vthMarginForSigma(double sigma, double k) {
  if (sigma < 0) throw std::invalid_argument("vthMarginForSigma: sigma < 0");
  return k * sigma;
}

}  // namespace nano::device
