// Compact MOSFET model implementing the paper's Eqs. (2)-(4):
//
//   (3)  Idsat0 = (W*mu_eff*Coxe / 2*Leff) * (Vgs-Vth)^2 / (1 + (Vgs-Vth)/(Esat*Leff))
//   (2)  Ion    = Idsat0 corrected for the parasitic source resistance Rs
//   (4)  Ioff   = 10 uA/um * 10^(-Vth / S)
//
// extended with the modeling the paper's Section 3.1 discussion calls for:
//  * electrical oxide thickness (physical + ~7 A inversion-layer/"GDE"
//    correction; ~3.5 A for a metal gate that eliminates gate depletion),
//  * universal-mobility degradation mu_eff(Eeff) with Eeff = (Vgs+Vth)/6Tox,
//  * velocity saturation through Esat = 2*vsat/mu_eff,
//  * DIBL (needed for the paper's "static power decays roughly quadratically
//    with Vdd at fixed Vth" observation used in Figures 3-4),
//  * temperature dependence of the subthreshold swing and Vth (Figure 1 is
//    drawn at 85 C),
//  * EKV-style Vgt smoothing so the drive-current law degrades gracefully
//    into the subthreshold region (Figures 3-4 operate at Vdd as low as
//    0.2 V with Vth ~ 0.11 V).
//
// All quantities SI; per-width currents in A/m (== uA/um).
#pragma once

#include "tech/itrs.h"
#include "util/numeric.h"

namespace nano::device {

enum class GateStack {
  Poly,      ///< poly gate: inversion layer + gate depletion, +7 A electrical
  Metal,     ///< metal gate: inversion layer only, +3.5 A electrical
};

/// Full parameter set of one transistor flavor. Use Mosfet::fromNode() to
/// derive one from an ITRS roadmap entry.
struct MosfetParams {
  double toxPhysical = 2e-9;   ///< physical oxide thickness, m
  GateStack gateStack = GateStack::Poly;
  double leff = 1e-7;          ///< effective channel length, m
  double vthNominal = 0.3;     ///< saturation Vth at Vds = vddReference, V
  double vddReference = 1.8;   ///< Vds at which vthNominal is specified, V
  double rsOhmM = 180e-6;      ///< source parasitic resistance * width, ohm*m
  double dibl = 0.0;           ///< Vth shift per volt of Vds reduction, V/V
  double swing300K = 0.085;    ///< subthreshold swing at 300 K, V/decade
  double temperature = 300.0;  ///< operating temperature, K

  // Universal mobility model mu0 / (1 + (Eeff/E0)^nu), low-field mobility
  // scaled as (300/T)^1.5. E0/nu/vsat are calibrated so the required-Vth
  // row of the paper's Table 2 is matched to 16 mV RMS across the roadmap
  // (see tests/device/mosfet_test and EXPERIMENTS.md).
  double mu0 = 540e-4;         ///< m^2/Vs (540 cm^2/Vs, electrons)
  double e0Universal = 7.0e7;  ///< V/m (0.70 MV/cm)
  double nuUniversal = 2.0;
  double vsat = 1.2e5;         ///< saturation velocity, m/s

  double ioffPrefactor = 10.0;       ///< Eq. (4) prefactor, A/m (10 uA/um)
  double vthTempCo = -0.7e-3;        ///< Vth temperature coefficient, V/K
};

/// One NMOS device flavor; immutable after construction. All currents are
/// per unit width (A/m).
class Mosfet {
 public:
  explicit Mosfet(const MosfetParams& params);

  /// Derive a device from a roadmap node, with an explicit Vth. Leff, Tox,
  /// Rs, DIBL, swing and the reference Vdd come from the node.
  static Mosfet fromNode(const tech::TechNode& node, double vth,
                         GateStack stack = GateStack::Poly,
                         double temperature = 300.0);

  [[nodiscard]] const MosfetParams& params() const { return params_; }

  /// Electrical oxide thickness (physical + inversion/GDE correction), m.
  [[nodiscard]] double toxElectrical() const;
  /// Electrical gate-oxide capacitance per area, F/m^2.
  [[nodiscard]] double coxElectrical() const;
  /// Physical gate-oxide capacitance per area, F/m^2.
  [[nodiscard]] double coxPhysical() const;

  /// Effective threshold seen at drain bias `vds` (DIBL raises Vth when the
  /// device operates below the reference drain bias), at the operating
  /// temperature.
  [[nodiscard]] double vthEffective(double vds) const;

  /// Subthreshold swing at the operating temperature, V/decade.
  [[nodiscard]] double subthresholdSwing() const;

  /// Universal-mobility effective mobility at gate bias `vgs`, m^2/Vs.
  [[nodiscard]] double mobility(double vgs) const;

  /// Velocity-saturation field 2*vsat/mu_eff(vgs), V/m.
  [[nodiscard]] double esat(double vgs) const;

  /// Eq. (3), per width (A/m), with EKV smoothing of (Vgs - Vth) so the
  /// expression remains valid through weak inversion. `vds` sets the DIBL
  /// operating point (defaults to the reference Vdd).
  [[nodiscard]] double idsat0(double vgs, double vds = -1.0) const;

  /// Eq. (2): first-order source-resistance correction as printed in the
  /// paper. Can be inaccurate (even negative) when Idsat0*Rs is a large
  /// fraction of Vgs-Vth; prefer ionSelfConsistent() for nanometer nodes.
  [[nodiscard]] double ionFirstOrder(double vgs) const;

  /// Source-resistance-degenerated on-current solved self-consistently:
  /// I = Idsat0(Vgs - I*Rs). Agrees with ionFirstOrder() to first order.
  /// `vds` sets the DIBL operating point (default: the reference Vdd); pass
  /// the actual operating supply when studying reduced-Vdd operation
  /// (Figures 3-4). Solved with the bracketed Illinois iteration shared
  /// with kernel::DeviceKernel (kernel/ion_solve.h); agrees with the
  /// historical Brent solve to ~1e-11 relative (same 1e-12*Imax interval
  /// tolerance), well inside the 1e-6 golden-figure tolerance.
  [[nodiscard]] double ionSelfConsistent(double vgs, double vds = -1.0) const;

  /// Drive current at the reference supply (self-consistent), A/m.
  [[nodiscard]] double ion() const;

  /// Eq. (4) off-current at drain bias `vds` (default: reference Vdd),
  /// including DIBL and temperature, A/m.
  [[nodiscard]] double ioff(double vds = -1.0) const;

  /// Deep-triode channel conductance per width at gate bias `vgs`:
  /// mu_eff * Coxe * (Vgs - Vth) / Leff, A/(V*m). What a pass/sleep device
  /// presents when its drain-source voltage is small.
  [[nodiscard]] double linearConductance(double vgs) const;

  /// EKV-smoothed overdrive: ~= vgs - vth above threshold, exponential decay
  /// below; exposed for tests.
  [[nodiscard]] double smoothedOverdrive(double vgs, double vth) const;

 private:
  MosfetParams params_;
};

/// Iteration/tolerance knobs for the Vth solve; the defaults reproduce the
/// historical behavior. Exposed so fault-injection tests can force the
/// max-iteration path without waiting for a pathological tech node.
struct VthSolveOptions {
  int maxExpand = 40;    ///< bracket doublings before the wide-bracket retry
  double xtol = 1e-9;    ///< V
  int maxIter = 100;     ///< Brent budget (bisection fallback gets 2x)
};

/// Structured outcome of a Vth solve. On failure `vth` is the best iterate
/// (NaN only when the inputs themselves were non-finite).
struct VthSolveResult {
  double vth = 0.0;            ///< V
  util::Diagnostics diag;      ///< kernel "device/solve_vth"
};

/// Checked Vth-for-Ion solve: never throws on numerical failure. Recovery
/// ladder: NaN/Inf input guard, bracket solve on [-0.2, Vdd], then one
/// re-expansion retry on a much wider bracket before reporting
/// BracketFailure.
VthSolveResult solveVthForIonChecked(const tech::TechNode& node,
                                     double ionTarget,
                                     GateStack stack = GateStack::Poly,
                                     double vddOverride = -1.0,
                                     double temperature = 300.0,
                                     const VthSolveOptions& options = {});

/// Solve for the Vth that makes the device's self-consistent Ion at the
/// node's Vdd equal `ionTarget` (A/m). This is the computation behind the
/// "Vth required to meet Ion" row of Table 2. Thin throwing wrapper over
/// solveVthForIonChecked(): raises std::invalid_argument on bracket
/// failure or non-finite inputs, like the historical implementation.
double solveVthForIon(const tech::TechNode& node, double ionTarget,
                      GateStack stack = GateStack::Poly,
                      double vddOverride = -1.0, double temperature = 300.0);

/// PMOS per-width drive relative to NMOS at equal geometry; used by gate
/// models to size pull-up networks (holes: lower mobility).
inline constexpr double kPmosCurrentFactor = 0.45;

}  // namespace nano::device
