// Vth variability (paper Section 1 lists "increasing Vth fluctuations
// across a large die" among the nanometer challenges). Models random
// dopant / geometry mismatch with the Pelgrom law, sigma(Vth) =
// A_vt / sqrt(W * L), and propagates it through Eq. (4):  leakage is
// lognormal in Vth, so variability *multiplies the mean* — the reason
// worst-case leakage budgets blow up even when the median behaves.
#pragma once

#include "device/mosfet.h"
#include "util/rng.h"

namespace nano::device {

/// Pelgrom matching coefficient, V*m (3 mV*um is a typical planar value).
inline constexpr double kPelgromAvt = 3.0e-9;

/// Sigma of Vth for a device of width `w` and the node's Leff, V.
double vthSigma(const tech::TechNode& node, double width,
                double avt = kPelgromAvt);

/// Closed form: mean leakage amplification of a lognormal Ioff when Vth ~
/// N(vth, sigma^2) through Eq. (4): exp(0.5 * (sigma*ln10/S)^2).
double meanLeakageAmplification(double sigma, double swing);

/// Monte-Carlo summary of per-device leakage under Vth variation.
struct LeakageSpread {
  double meanAmplification = 0.0;   ///< mean(Ioff) / Ioff(mean Vth)
  double p95Amplification = 0.0;    ///< 95th percentile / nominal
  double sigmaVth = 0.0;            ///< V
  int samples = 0;
};

/// Sample `samples` devices of width `width` at `node`'s solved Vth and
/// summarize the leakage spread. Deterministic given the Rng.
LeakageSpread sampleLeakageSpread(const tech::TechNode& node, double vth,
                                  double width, util::Rng& rng,
                                  int samples = 20000,
                                  double avt = kPelgromAvt);

/// Die-level view: with N devices the worst ones dominate; returns the
/// multiplier on TOTAL die leakage vs the no-variation estimate (equals
/// the mean amplification, by linearity) and the effective "sigma budget"
/// a designer must carry: the Vth margin delta such that
/// Ioff(vth - delta) equals the (1 + k*sigma) population draw.
double vthMarginForSigma(double sigma, double k = 3.0);

}  // namespace nano::device
