#include "device/mosfet.h"

#include <cmath>
#include <stdexcept>

#include "kernel/ion_solve.h"
#include "obs/obs.h"
#include "util/numeric.h"
#include "util/units.h"

namespace nano::device {

using namespace nano::units;

namespace {
constexpr double kPolyElectricalExtra = 7.0e-10;   // +7 A: inversion + GDE
constexpr double kMetalElectricalExtra = 3.5e-10;  // +3.5 A: inversion only
constexpr double kRoomTemperature = 300.0;
}  // namespace

Mosfet::Mosfet(const MosfetParams& params) : params_(params) {
  if (params_.toxPhysical <= 0 || params_.leff <= 0) {
    throw std::invalid_argument("Mosfet: non-positive geometry");
  }
  if (params_.temperature <= 0) {
    throw std::invalid_argument("Mosfet: non-positive temperature");
  }
}

Mosfet Mosfet::fromNode(const tech::TechNode& node, double vth, GateStack stack,
                        double temperature) {
  MosfetParams p;
  p.toxPhysical = node.toxPhysical;
  p.gateStack = stack;
  p.leff = node.leff;
  p.vthNominal = vth;
  p.vddReference = node.vdd;
  p.rsOhmM = node.rsSourceOhmM;
  p.dibl = node.dibl;
  p.swing300K = node.subthresholdSwing;
  p.temperature = temperature;
  return Mosfet(p);
}

double Mosfet::toxElectrical() const {
  const double extra = params_.gateStack == GateStack::Metal
                           ? kMetalElectricalExtra
                           : kPolyElectricalExtra;
  return params_.toxPhysical + extra;
}

double Mosfet::coxElectrical() const { return epsSiO2 / toxElectrical(); }

double Mosfet::coxPhysical() const { return epsSiO2 / params_.toxPhysical; }

double Mosfet::vthEffective(double vds) const {
  if (vds < 0) vds = params_.vddReference;
  const double tempShift =
      params_.vthTempCo * (params_.temperature - kRoomTemperature);
  // Below the reference drain bias the barrier is taller (less DIBL), so
  // the effective threshold rises; above it, DIBL lowers the threshold.
  return params_.vthNominal + tempShift +
         params_.dibl * (params_.vddReference - vds);
}

double Mosfet::subthresholdSwing() const {
  return params_.swing300K * params_.temperature / kRoomTemperature;
}

double Mosfet::mobility(double vgs) const {
  // Universal mobility: Eeff ~= (Vgs + Vth) / (6 * Tox) for NMOS.
  const double vth = vthEffective(params_.vddReference);
  const double eeff = std::max(vgs + vth, 0.05) / (6.0 * toxElectrical());
  const double mu0T =
      params_.mu0 * std::pow(kRoomTemperature / params_.temperature, 1.5);
  // nu == 2 (the universal-mobility default) gets r*r instead of pow();
  // on this libm pow(r, 2.0) == r*r bit-exactly, and the kernel
  // equivalence tests pin that assumption.
  const double r = eeff / params_.e0Universal;
  const double degradation =
      params_.nuUniversal == 2.0 ? r * r : std::pow(r, params_.nuUniversal);
  return mu0T / (1.0 + degradation);
}

double Mosfet::esat(double vgs) const { return 2.0 * params_.vsat / mobility(vgs); }

double Mosfet::smoothedOverdrive(double vgs, double vth) const {
  // EKV interpolation: vgt_eff = 2*n*vt*ln(1 + exp((vgs-vth)/(2*n*vt))),
  // with n*vt = S/ln(10). Squaring it in Eq. (3) reproduces the correct
  // exp(vgt/(n*vt)) subthreshold slope.
  const double nvt = subthresholdSwing() / std::log(10.0);
  const double x = (vgs - vth) / (2.0 * nvt);
  if (x > 30.0) return vgs - vth;  // avoid exp overflow; smoothing negligible
  return 2.0 * nvt * std::log1p(std::exp(x));
}

double Mosfet::idsat0(double vgs, double vds) const {
  if (vds < 0) vds = params_.vddReference;
  const double vth = vthEffective(vds);
  const double vgt = smoothedOverdrive(vgs, vth);
  const double mu = mobility(vgs);
  const double esatL = esat(vgs) * params_.leff;
  const double cox = coxElectrical();
  return (mu * cox / (2.0 * params_.leff)) * vgt * vgt / (1.0 + vgt / esatL);
}

double Mosfet::ionFirstOrder(double vgs) const {
  const double i0 = idsat0(vgs);
  const double vth = vthEffective(params_.vddReference);
  const double vgt = smoothedOverdrive(vgs, vth);
  const double esatL = esat(vgs) * params_.leff;
  const double irs = i0 * params_.rsOhmM;
  return i0 * (1.0 - 2.0 * irs / vgt + irs / (vgt + esatL));
}

double Mosfet::ionSelfConsistent(double vgs, double vds) const {
  // Solve I = Idsat0(vgs - I*Rs): the source resistance debiases the gate.
  if (!std::isfinite(vgs)) return std::nan("");
  const double iMax = idsat0(vgs, vds);
  if (!std::isfinite(iMax)) return std::nan("");
  if (iMax <= 0) return 0.0;
  // f(0) = iMax > 0 and f(iMax) <= 0 (degeneration can only reduce
  // current), so [0, iMax] brackets the fixed point. The shared Illinois
  // solver (kernel/ion_solve.h) is also what kernel::DeviceKernel::ion
  // runs, so the scalar and batched paths are bit-identical.
  const double rs = params_.rsOhmM;
  const kernel::IonSolveResult r = kernel::solveDegeneratedIon(
      [&](double i) { return idsat0(vgs - i * rs, vds); }, iMax,
      iMax * 1e-12);
  if (!r.converged) NANO_OBS_COUNT("device/ion_solve_nonconverged", 1);
  return r.x;
}

double Mosfet::ion() const { return ionSelfConsistent(params_.vddReference); }

double Mosfet::ioff(double vds) const {
  if (vds < 0) vds = params_.vddReference;
  const double vth = vthEffective(vds);
  return params_.ioffPrefactor * std::pow(10.0, -vth / subthresholdSwing());
}

double Mosfet::linearConductance(double vgs) const {
  // Near vds = 0 there is no DIBL relief: use the threshold at low drain
  // bias, smoothed so the expression decays into subthreshold.
  const double vth = vthEffective(0.0);
  const double vgt = smoothedOverdrive(vgs, vth);
  return mobility(vgs) * coxElectrical() * vgt / params_.leff;
}

VthSolveResult solveVthForIonChecked(const tech::TechNode& node,
                                     double ionTarget, GateStack stack,
                                     double vddOverride, double temperature,
                                     const VthSolveOptions& options) {
  NANO_OBS_SPAN("device/solve_vth");
  VthSolveResult out;
  out.diag.kernel = "device/solve_vth";
  const double vdd = vddOverride > 0 ? vddOverride : node.vdd;
  NANO_OBS_COUNT("device/vth_solves", 1);

  // NaN/Inf guard on the model inputs before any device is constructed:
  // a poisoned target would otherwise surface as a confusing bracket
  // failure 40 expansions later.
  if (!std::isfinite(ionTarget) || !std::isfinite(vdd) ||
      !std::isfinite(temperature)) {
    out.vth = std::nan("");
    out.diag.status = util::SolverStatus::NanDetected;
    out.diag.residual = std::nan("");
    NANO_OBS_COUNT("device/vth_solve_nonconverged", 1);
    return out;
  }

  auto ionAtVth = [&](double vth) {
    MosfetParams p;
    p.toxPhysical = node.toxPhysical;
    p.gateStack = stack;
    p.leff = node.leff;
    p.vthNominal = vth;
    p.vddReference = vdd;
    p.rsOhmM = node.rsSourceOhmM;
    p.dibl = node.dibl;
    p.swing300K = node.subthresholdSwing;
    p.temperature = temperature;
    return Mosfet(p).ionSelfConsistent(vdd) - ionTarget;
  };
  // Ion decreases monotonically with Vth; search a generous bracket.
  util::SolveResult r = util::tryBracketAndSolve(
      ionAtVth, -0.2, vdd, options.maxExpand, options.xtol, options.maxIter);
  if (r.status == util::SolverStatus::BracketFailure) {
    // Re-expansion: retry once on a much wider window before giving up.
    // Deep-subthreshold targets (tiny Ion) push the root far above Vdd.
    const util::SolveResult wide =
        util::tryBracketAndSolve(ionAtVth, -1.0, 2.0 * vdd + 1.0,
                                 options.maxExpand + 20, options.xtol,
                                 options.maxIter);
    if (wide.status != util::SolverStatus::BracketFailure) {
      NANO_OBS_COUNT("device/vth_solve_rebracketed", 1);
      r = wide;
    }
  }
  out.vth = r.x;
  out.diag = r.diagnostics();
  out.diag.kernel = "device/solve_vth";
  NANO_OBS_COUNT("device/vth_solve_iterations", r.iterations);
  if (!r.converged) NANO_OBS_COUNT("device/vth_solve_nonconverged", 1);
  return out;
}

double solveVthForIon(const tech::TechNode& node, double ionTarget,
                      GateStack stack, double vddOverride, double temperature) {
  const VthSolveResult r =
      solveVthForIonChecked(node, ionTarget, stack, vddOverride, temperature);
  if (r.diag.status == util::SolverStatus::BracketFailure ||
      r.diag.status == util::SolverStatus::NanDetected) {
    throw std::invalid_argument("solveVthForIon: " + r.diag.describe());
  }
  return r.vth;
}

}  // namespace nano::device
