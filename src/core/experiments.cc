#include "core/experiments.h"

#include <cmath>
#include <stdexcept>

#include "device/gate_model.h"
#include "device/mosfet.h"
#include "exec/exec.h"
#include "kernel/device_batch.h"
#include "obs/obs.h"
#include "util/numeric.h"
#include "util/units.h"

namespace nano::core {

using namespace nano::units;

namespace {

Table2Row makeTable2Row(const tech::TechNode& node, double vdd,
                        double coxeRef, double coxPhysRef) {
  Table2Row row;
  row.nodeNm = node.featureNm;
  row.vdd = vdd;

  const double vth = device::solveVthForIon(node, node.ionTarget,
                                            device::GateStack::Poly, vdd);
  const device::Mosfet poly = [&] {
    device::MosfetParams p = device::Mosfet::fromNode(node, vth).params();
    p.vddReference = vdd;
    return device::Mosfet(p);
  }();
  row.coxeNorm = poly.coxElectrical() / coxeRef;
  row.coxPhysNorm = poly.coxPhysical() / coxPhysRef;
  row.vthRequired = vth;
  row.ioffNaUm = poly.ioff(vdd) / nA_per_um;

  const double vthMetal = device::solveVthForIon(
      node, node.ionTarget, device::GateStack::Metal, vdd);
  device::MosfetParams pm =
      device::Mosfet::fromNode(node, vthMetal, device::GateStack::Metal)
          .params();
  pm.vddReference = vdd;
  row.vthMetal = vthMetal;
  row.ioffMetalNaUm = device::Mosfet(pm).ioff(vdd) / nA_per_um;

  row.ioffItrsNaUm = node.ioffItrs / nA_per_um;
  return row;
}

}  // namespace

Table2 computeTable2() {
  Table2 table;
  const auto& ref = tech::nodeByFeature(180);
  const device::Mosfet refDev = device::Mosfet::fromNode(ref, 0.3);
  const double coxeRef = refDev.coxElectrical();
  const double coxPhysRef = refDev.coxPhysical();

  // Paper Table 2 reference rows (Vth / Ioff / metal-gate Ioff).
  const double paperVth[6] = {0.30, 0.29, 0.22, 0.14, 0.04, 0.11};
  const double paperIoff[6] = {3, 4, 26, 210, 3205, 456};
  const double paperIoffMetal[6] = {1, 1.4, 8.7, 55, 666, 103};

  int i = 0;
  for (int f : tech::roadmapFeatures()) {
    const auto& node = tech::nodeByFeature(f);
    Table2Row row = makeTable2Row(node, node.vdd, coxeRef, coxPhysRef);
    row.paperVth = paperVth[i];
    row.paperIoff = paperIoff[i];
    row.paperIoffMetal = paperIoffMetal[i];
    table.rows.push_back(row);
    ++i;
  }
  const auto& n50 = tech::nodeByFeature(50);
  table.row50At07 = makeTable2Row(n50, n50.vddAlternative, coxeRef, coxPhysRef);
  table.row50At07.paperVth = 0.12;
  table.row50At07.paperIoff = 432;
  table.row50At07.paperIoffMetal = 100;

  table.modelGrowth = table.rows.back().ioffNaUm / table.rows.front().ioffNaUm;
  table.itrsGrowth =
      table.rows.back().ioffItrsNaUm / table.rows.front().ioffItrsNaUm;
  return table;
}

std::vector<Fig1Point> computeFigure1(int points) {
  const double tHot = fromCelsius(85.0);
  const auto& n70 = tech::nodeByFeature(70);
  const auto& n50 = tech::nodeByFeature(50);
  // Each sweep point is independent; parallelMap keeps slot i for point i
  // so the output ordering matches the serial loop exactly.
  const std::vector<double> activities = util::logspace(0.01, 0.5, points);
  return exec::parallelMap<Fig1Point>(activities.size(), [&](std::size_t i) {
    const double a = activities[i];
    Fig1Point p;
    p.activity = a;
    p.ratio70nm09V = device::staticToDynamicRatio(n70, a, tHot);
    p.ratio50nm07V =
        device::staticToDynamicRatio(n50, a, tHot, n50.vddAlternative);
    p.ratio50nm06V = device::staticToDynamicRatio(n50, a, tHot);
    return p;
  });
}

std::vector<Fig2Point> computeFigure2() {
  const auto features = tech::roadmapFeatures();
  return exec::parallelMap<Fig2Point>(features.size(), [&](std::size_t i) {
    const int f = features[i];
    const auto& node = tech::nodeByFeature(f);
    const double vthHigh = device::solveVthForIon(node, node.ionTarget);
    const device::Mosfet high = device::Mosfet::fromNode(node, vthHigh);
    const device::Mosfet low =
        device::Mosfet::fromNode(node, vthHigh - 0.100);
    const double ionHigh = high.ion();

    Fig2Point p;
    p.nodeNm = f;
    p.ionGainPercent = 100.0 * (low.ion() / ionHigh - 1.0);

    // Vth reduction needed for +20 % Ion, converted to an Ioff multiplier
    // through Eq. (4).
    const double vth20 =
        device::solveVthForIon(node, 1.2 * node.ionTarget);
    const double dvth = vthHigh - vth20;
    p.ioffPenaltyFor20 = std::pow(10.0, dvth / node.subthresholdSwing);
    return p;
  });
}

const char* policyName(VthPolicy policy) {
  switch (policy) {
    case VthPolicy::Constant: return "constant Vth";
    case VthPolicy::ConstantPstatic: return "scaled Vth, Pstatic constant";
    case VthPolicy::Conservative: return "conservatively scaled Vth";
  }
  throw std::logic_error("policyName: bad policy");
}

namespace {

/// Shared context for the Figure 3/4 sweep on one node. The prepared
/// DeviceKernel evaluates each (Vth, Vdd) probe — every policy solve calls
/// the model dozens of times — without rebuilding a Mosfet per probe;
/// its evaluators are bit-identical to that historical path.
struct Fig34Context {
  kernel::DeviceKernel kern;
  const tech::TechNode* node = nullptr;
  double vdd0 = 0.0;
  double vth0 = 0.0;       ///< design Vth at nominal Vdd
  double pstat0 = 0.0;     ///< W, reference static power
  double ioff0 = 0.0;      ///< A/m at nominal
  double delay0 = 0.0;     ///< s (arbitrary load constant folded in)
  double loadCap = 0.0;    ///< F, fixed FO4 + wire load
  double widthEff = 0.0;   ///< m, leakage-effective width
  double freq = 0.0;
};

double delayAt(const Fig34Context& ctx, double vdd, double vthDesign) {
  const double ion = ctx.kern.ion(vthDesign, vdd, vdd);
  return ctx.loadCap * vdd / ion;  // k*C*V/I; the constant cancels
}

double pstatAt(const Fig34Context& ctx, double vdd, double vthDesign) {
  return vdd * ctx.kern.ioff(vthDesign, vdd) * ctx.widthEff;
}

/// Per-point solve with recovery: a failed bracket retries once on a wider
/// window; a terminal failure returns NaN so one bad sweep point marks
/// itself instead of throwing out of a parallel map.
double solvePolicyVth(const std::function<double(double)>& f, double vth0) {
  util::SolveResult r =
      util::tryBracketAndSolve(f, vth0 - 0.3, vth0 + 0.1, 40, 1e-9);
  if (r.status == util::SolverStatus::BracketFailure) {
    r = util::tryBracketAndSolve(f, vth0 - 0.8, vth0 + 0.5, 60, 1e-9);
    if (r.status != util::SolverStatus::BracketFailure) {
      NANO_OBS_COUNT("core/fig34_vth_rebracketed", 1);
    }
  }
  if (r.status == util::SolverStatus::BracketFailure ||
      r.status == util::SolverStatus::NanDetected) {
    NANO_OBS_COUNT("core/fig34_point_failed", 1);
    return std::nan("");
  }
  return r.x;
}

double vthForPolicy(const Fig34Context& ctx, VthPolicy policy, double vdd) {
  switch (policy) {
    case VthPolicy::Constant:
      return ctx.vth0;
    case VthPolicy::ConstantPstatic:
      // Vdd * Ioff(vth, vdd) == Vdd0 * Ioff0.
      return solvePolicyVth(
          [&](double vth) { return pstatAt(ctx, vdd, vth) - ctx.pstat0; },
          ctx.vth0);
    case VthPolicy::Conservative:
      // Ioff(vth, vdd) == Ioff0: Pstatic scales linearly with Vdd.
      return solvePolicyVth(
          [&](double vth) { return ctx.kern.ioff(vth, vdd) - ctx.ioff0; },
          ctx.vth0);
  }
  throw std::logic_error("vthForPolicy: bad policy");
}

Fig34Context makeContext(int nodeNm) {
  const tech::TechNode& node = tech::nodeByFeature(nodeNm);
  // Vth specified at nominal Vdd; DIBL applies below it.
  Fig34Context ctx{kernel::DeviceKernel::fromNode(node, node.vdd)};
  ctx.node = &node;
  ctx.vdd0 = node.vdd;
  ctx.vth0 = device::solveVthForIon(*ctx.node, ctx.node->ionTarget);
  const device::InverterModel inv(*ctx.node, ctx.vth0, ctx.vdd0);
  ctx.loadCap = 4.0 * inv.inputCap() +
                ctx.node->localWireCapPerM * ctx.node->avgLocalWireLength +
                inv.outputCap();
  ctx.widthEff = 0.5 * (inv.wn() + device::kPmosCurrentFactor * inv.wp());
  ctx.freq = ctx.node->clockLocal;
  ctx.ioff0 = ctx.kern.ioff(ctx.vth0, ctx.vdd0);
  ctx.pstat0 = pstatAt(ctx, ctx.vdd0, ctx.vth0);
  ctx.delay0 = delayAt(ctx, ctx.vdd0, ctx.vth0);
  return ctx;
}

}  // namespace

std::vector<Fig34Point> computeFigure34(int nodeNm, int points,
                                        double activity, double vddMin) {
  const Fig34Context ctx = makeContext(nodeNm);
  const std::vector<double> vdds = util::linspace(vddMin, ctx.vdd0, points);
  // Each Vdd point runs three Newton solves; they only read the shared
  // context, so the sweep parallelizes without any synchronization.
  return exec::parallelMap<Fig34Point>(vdds.size(), [&](std::size_t i) {
    const double vdd = vdds[i];
    Fig34Point pt;
    pt.vdd = vdd;
    for (std::size_t k = 0; k < kVthPolicies.size(); ++k) {
      const double vth = vthForPolicy(ctx, kVthPolicies[k], vdd);
      pt.vthDesign[k] = vth;
      pt.delayNorm[k] = delayAt(ctx, vdd, vth) / ctx.delay0;
      const double pdyn =
          activity * ctx.loadCap * vdd * vdd * ctx.freq;
      pt.pdynOverPstat[k] = pdyn / pstatAt(ctx, vdd, vth);
    }
    return pt;
  });
}

Section33Claims computeSection33Claims(double activity) {
  const Fig34Context ctx = makeContext(35);
  Section33Claims c;
  const double vLow = 0.2;
  c.delayRatioConstVthAt02 =
      delayAt(ctx, vLow, ctx.vth0) / ctx.delay0;
  const double vthScaled = vthForPolicy(ctx, VthPolicy::ConstantPstatic, vLow);
  c.delayRatioScaledAt02 = delayAt(ctx, vLow, vthScaled) / ctx.delay0;
  c.dynReductionAt02 = 1.0 - (vLow * vLow) / (ctx.vdd0 * ctx.vdd0);

  // Vdd where Pdyn/Pstat hits 10 on the constant-Pstatic policy.
  auto ratioMinus10 = [&](double vdd) {
    const double vth = vthForPolicy(ctx, VthPolicy::ConstantPstatic, vdd);
    const double pdyn = activity * ctx.loadCap * vdd * vdd * ctx.freq;
    return pdyn / pstatAt(ctx, vdd, vth) - 10.0;
  };
  // bracketAndSolve (maxExpand 0) keeps brent's contract on the fixed
  // interval but adds the bisection fallback if a Brent solve stalls.
  c.vddAtRatio10 =
      util::bracketAndSolve(ratioMinus10, 0.2, ctx.vdd0, 0, 1e-6).x;
  c.dynReductionAtRatio10 =
      1.0 - (c.vddAtRatio10 * c.vddAtRatio10) / (ctx.vdd0 * ctx.vdd0);
  return c;
}

std::vector<Fig5Row> computeFigure5(bool withMeshCrossCheck,
                                    const powergrid::GridSolverOptions& solver) {
  powergrid::IrDropOptions options;
  options.runMesh = withMeshCrossCheck;
  options.solver = solver;
  // One mesh solve per roadmap node — the heaviest per-item sweep here.
  const auto features = tech::roadmapFeatures();
  return exec::parallelMap<Fig5Row>(features.size(), [&](std::size_t i) {
    const auto& node = tech::nodeByFeature(features[i]);
    Fig5Row row;
    row.nodeNm = features[i];
    row.minPitch = powergrid::minPitchReport(node, options);
    row.itrs = powergrid::itrsPitchReport(node, options);
    return row;
  });
}

}  // namespace nano::core
