// The paper's Section 3.3 endgame: with multiple supplies and thresholds,
// "designers and EDA tools can fully explore the design space of dynamic
// power, static power, and timing slack". This module is that explorer: a
// (Vdd, Vth) grid evaluated through the compact model, plus the
// constrained optimizer (minimum total power subject to a delay target)
// that the multi-Vdd/multi-Vth flow approximates discretely.
#pragma once

#include <vector>

#include "tech/itrs.h"

namespace nano::core {

/// One (Vdd, Vth) operating point of a reference gate, normalized to the
/// node's nominal corner (nominal Vdd, Table-2 Vth).
struct OperatingPoint {
  double vdd = 0.0;        ///< V
  double vthDesign = 0.0;  ///< V, specified at nominal Vdd (DIBL applies)
  double delayNorm = 0.0;  ///< delay / nominal delay
  double pdynNorm = 0.0;   ///< dynamic power / nominal dynamic power
  double pstatNorm = 0.0;  ///< static power / nominal STATIC power
  double ptotalNorm = 0.0; ///< total power / nominal total power
  double staticFraction = 0.0;  ///< Pstat / (Pstat + Pdyn) at this point
};

/// Exploration options.
struct DesignSpaceOptions {
  int nodeNm = 35;
  double activity = 0.1;   ///< switching activity for the dynamic term
  double vddMin = 0.2;     ///< V
  double vthMin = -0.05;   ///< V
  double vthMax = 0.30;    ///< V
  int vddSteps = 15;
  int vthSteps = 15;
};

/// Evaluate a single (vdd, vthDesign) point.
OperatingPoint evaluatePoint(const DesignSpaceOptions& options, double vdd,
                             double vthDesign);

/// The full grid (vddSteps x vthSteps points).
std::vector<OperatingPoint> exploreDesignSpace(const DesignSpaceOptions& options);

/// Minimum-total-power point subject to delayNorm <= delayTarget and
/// (optionally) a static-power share cap. Without the cap the optimum
/// pins Vdd at the floor and buys the speed back with near-zero Vth — the
/// model's honest low-activity answer; with the ITRS-style cap
/// (maxStaticFraction = 1/11, i.e. Pdyn >= 10 * Pstat) it reproduces the
/// paper's Figure-4 operating point near Vdd = 0.44 V.
OperatingPoint optimalPoint(const DesignSpaceOptions& options,
                            double delayTarget,
                            double maxStaticFraction = 1.0);

/// The ITRS static-share constraint the paper applies: Pdyn >= 10 * Pstat.
inline constexpr double kItrsStaticFractionCap = 1.0 / 11.0;

}  // namespace nano::core
