// Shared printers for the experiment results: each renders a paper table
// or figure as an ASCII table with the paper's reported values alongside
// the model's. Used by the bench binaries and the examples.
#pragma once

#include <ostream>

#include "core/analysis.h"
#include "core/experiments.h"

namespace nano::core {

void printTable2(std::ostream& os, const Table2& table);
void printFigure1(std::ostream& os, const std::vector<Fig1Point>& series);
void printFigure2(std::ostream& os, const std::vector<Fig2Point>& series);
void printFigure3(std::ostream& os, const std::vector<Fig34Point>& series);
void printFigure4(std::ostream& os, const std::vector<Fig34Point>& series);
void printFigure5(std::ostream& os, const std::vector<Fig5Row>& series);
void printSection33Claims(std::ostream& os, const Section33Claims& claims);
void printNodeSummary(std::ostream& os, const NodeSummary& summary);

/// Side-by-side roadmap comparison: one row per node with the headline
/// quantities of every subsystem (the "BACPAC view" of the roadmap).
void printRoadmapComparison(std::ostream& os);

}  // namespace nano::core
