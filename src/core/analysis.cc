#include "core/analysis.h"

#include "device/gate_model.h"
#include "exec/exec.h"
#include "util/units.h"

namespace nano::core {

using namespace nano::units;

NodeSummary summarizeNode(int featureNm) {
  NodeSummary s;
  const auto& node = tech::nodeByFeature(featureNm);
  s.node = &node;

  s.vthRequired = device::solveVthForIon(node, node.ionTarget);
  const device::Mosfet dev = device::Mosfet::fromNode(node, s.vthRequired);
  s.ionUaUm = dev.ion() / uA_per_um;
  s.ioffNaUm = dev.ioff() / nA_per_um;
  const device::Mosfet hot = device::Mosfet::fromNode(
      node, s.vthRequired, device::GateStack::Poly, fromCelsius(85.0));
  s.ioffHotNaUm = hot.ioff() / nA_per_um;

  const device::InverterModel inv(node, s.vthRequired, node.vdd);
  s.fo4DelayPs = inv.fo4Delay() / ps;
  s.fo4PerCycle = 1.0 / (inv.fo4Delay() * node.clockLocal);

  s.maxPowerW = node.maxPower;
  s.supplyCurrentA = node.supplyCurrent();
  s.standbyCurrentBudgetA = 0.1 * node.maxPower / node.vdd;

  s.thetaJaRequired = node.requiredThetaJa();
  s.packaging =
      &thermal::cheapestSolutionFor(node.maxPower, node.tjMax, node.tAmbient);
  s.coolingCostUsd = s.packaging->cost(node.maxPower);

  s.wiring = interconnect::analyzeGlobalWiring(node);

  s.gridMinPitch = powergrid::minPitchReport(node);
  s.gridItrs = powergrid::itrsPitchReport(node);
  s.wakeup = powergrid::wakeupTransient(node, node.itrsVddPads);
  return s;
}

std::vector<NodeSummary> summarizeRoadmap() {
  const auto features = tech::roadmapFeatures();
  return exec::parallelMap<NodeSummary>(
      features.size(),
      [&](std::size_t i) { return summarizeNode(features[i]); });
}

}  // namespace nano::core
