#include "core/report.h"

#include "util/table.h"
#include "util/units.h"

namespace nano::core {

using util::fmt;
using util::TextTable;

void printTable2(std::ostream& os, const Table2& table) {
  os << "Table 2: analytical model results for Ioff scaling\n"
     << "(Vth solved so that Ion = 750 uA/um; paper values in columns marked"
        " 'paper')\n";
  TextTable t({"node (nm)", "Vdd (V)", "Coxe (norm)", "Cox phys (norm)",
               "Vth req (V)", "paper Vth", "Ioff (nA/um)", "paper Ioff",
               "Ioff metal", "paper metal", "ITRS Ioff"});
  auto addRow = [&t](const Table2Row& r) {
    t.addRow({std::to_string(r.nodeNm), fmt(r.vdd, 2), fmt(r.coxeNorm, 2),
              fmt(r.coxPhysNorm, 2), fmt(r.vthRequired, 3), fmt(r.paperVth, 2),
              fmt(r.ioffNaUm, 1), fmt(r.paperIoff, 0), fmt(r.ioffMetalNaUm, 1),
              fmt(r.paperIoffMetal, 1), fmt(r.ioffItrsNaUm, 0)});
  };
  for (const auto& r : table.rows) addRow(r);
  t.addRule();
  addRow(table.row50At07);
  t.print(os);
  os << "Model Ioff growth 180->35 nm: " << fmt(table.modelGrowth, 0)
     << "x (paper: 152x); ITRS projection: " << fmt(table.itrsGrowth, 0)
     << "x (paper: 23x)\n";
}

void printFigure1(std::ostream& os, const std::vector<Fig1Point>& series) {
  os << "Figure 1: Pstatic / Pdynamic vs switching activity (FO4 inverter +"
        " average wire, 85 C)\n";
  TextTable t({"activity", "70nm @0.9V", "50nm @0.7V", "50nm @0.6V"});
  for (const auto& p : series) {
    t.addRow({fmt(p.activity, 3), fmt(p.ratio70nm09V, 3),
              fmt(p.ratio50nm07V, 3), fmt(p.ratio50nm06V, 3)});
  }
  t.print(os);
  os << "(paper: static power approaches/exceeds 10% of dynamic for"
        " activities of 0.01-0.1)\n";
}

void printFigure2(std::ostream& os, const std::vector<Fig2Point>& series) {
  os << "Figure 2: dual-Vth scalability\n";
  TextTable t({"node (nm)", "Ion gain, dVth=-100mV (%)",
               "Ioff penalty for +20% Ion (x)"});
  for (const auto& p : series) {
    t.addRow({std::to_string(p.nodeNm), fmt(p.ionGainPercent, 1),
              fmt(p.ioffPenaltyFor20, 1)});
  }
  t.print(os);
  os << "(paper: Ion gain grows with scaling; Ioff penalty falls from ~54x"
        " at 180 nm to ~7x at 35 nm; published 130 nm-class data: 12-14%"
        " gain)\n";
}

void printFigure3(std::ostream& os, const std::vector<Fig34Point>& series) {
  os << "Figure 3: normalized delay vs Vdd at 35 nm (three Vth policies)\n";
  TextTable t({"Vdd (V)", "constant Vth", "Vth (V)", "const-Pstatic", "Vth (V)",
               "conservative", "Vth (V)"});
  for (const auto& p : series) {
    t.addRow({fmt(p.vdd, 2), fmt(p.delayNorm[0], 2), fmt(p.vthDesign[0], 3),
              fmt(p.delayNorm[1], 2), fmt(p.vthDesign[1], 3),
              fmt(p.delayNorm[2], 2), fmt(p.vthDesign[2], 3)});
  }
  t.print(os);
  os << "(paper at 0.2 V: constant Vth 3.7x; scaled Vth < 1.3x)\n";
}

void printFigure4(std::ostream& os, const std::vector<Fig34Point>& series) {
  os << "Figure 4: Pdynamic / Pstatic vs Vdd at 35 nm, activity 0.1\n";
  TextTable t({"Vdd (V)", "constant Vth", "const-Pstatic", "conservative"});
  for (const auto& p : series) {
    t.addRow({fmt(p.vdd, 2), fmt(p.pdynOverPstat[0], 2),
              fmt(p.pdynOverPstat[1], 2), fmt(p.pdynOverPstat[2], 2)});
  }
  t.print(os);
  os << "(paper: the scaled-Vth ratio approaches 1 at 0.2 V; ratio 10 is"
        " reached near Vdd = 0.44 V)\n";
}

void printFigure5(std::ostream& os, const std::vector<Fig5Row>& series) {
  os << "Figure 5: IR-drop scaling (required power-rail width, normalized to"
        " minimum top-level width)\n";
  TextTable t({"node (nm)", "min pitch (um)", "W/Wmin", "routing %",
               "ITRS pitch (um)", "W/Wmin (ITRS)", "routing % (ITRS)",
               "Vdd bumps (ITRS)", "I/bump (A)"});
  for (const auto& r : series) {
    t.addRow({std::to_string(r.nodeNm),
              fmt(r.minPitch.padPitch * 1e6, 0),
              fmt(r.minPitch.widthOverMin, 1),
              fmt(100 * (r.minPitch.routingFraction +
                         powergrid::kLandingPadFraction), 1),
              fmt(r.itrs.padPitch * 1e6, 0), fmt(r.itrs.widthOverMin, 1),
              fmt(100 * r.itrs.routingFraction, 1),
              std::to_string(r.itrs.vddBumpCount),
              fmt(r.itrs.bumpCurrent, 2)});
  }
  t.print(os);
  os << "(paper: ~16x at 35 nm with the minimum (80 um) pitch and <4% of"
        " routing for the rails (+16% landing pads); with ITRS pad counts"
        " (356 um effective pitch) the width explodes past 2000x)\n";
}

void printSection33Claims(std::ostream& os, const Section33Claims& c) {
  os << "Section 3.3 headline claims (35 nm, nominal Vdd 0.6 V):\n";
  TextTable t({"claim", "model", "paper"});
  t.addRow({"delay at 0.2 V, constant Vth", fmt(c.delayRatioConstVthAt02, 2) + "x",
            "3.7x"});
  t.addRow({"delay at 0.2 V, Vth scaled (Pstatic const)",
            fmt(c.delayRatioScaledAt02, 2) + "x", "< 1.3x"});
  t.addRow({"dynamic power reduction at 0.2 V",
            fmt(100 * c.dynReductionAt02, 0) + " %", "89 %"});
  t.addRow({"Vdd where Pdyn/Pstat = 10", fmt(c.vddAtRatio10, 2) + " V",
            "~0.44 V"});
  t.addRow({"dynamic reduction at that Vdd",
            fmt(100 * c.dynReductionAtRatio10, 0) + " %", "46 %"});
  t.print(os);
}

void printNodeSummary(std::ostream& os, const NodeSummary& s) {
  os << "=== " << s.node->featureNm << " nm node (" << s.node->year
     << "), Vdd = " << fmt(s.node->vdd, 2) << " V ===\n";
  TextTable t({"quantity", "value"});
  t.addRow({"Vth for Ion target", fmt(s.vthRequired, 3) + " V"});
  t.addRow({"Ion", fmt(s.ionUaUm, 0) + " uA/um"});
  t.addRow({"Ioff (25 C / 85 C)",
            fmt(s.ioffNaUm, 1) + " / " + fmt(s.ioffHotNaUm, 1) + " nA/um"});
  t.addRow({"FO4 delay", fmt(s.fo4DelayPs, 1) + " ps"});
  t.addRow({"FO4 per clock cycle", fmt(s.fo4PerCycle, 1)});
  t.addRow({"max power / supply current",
            fmt(s.maxPowerW, 0) + " W / " + fmt(s.supplyCurrentA, 0) + " A"});
  t.addRow({"standby current budget (10% cap)",
            fmt(s.standbyCurrentBudgetA, 1) + " A"});
  t.addRow({"required theta_ja", fmt(s.thetaJaRequired, 3) + " K/W"});
  t.addRow({"packaging", s.packaging->name + " ($" +
                             fmt(s.coolingCostUsd, 0) + ")"});
  t.addRow({"global repeaters", util::fmtSci(s.wiring.repeaterCount, 2)});
  t.addRow({"global signaling power", fmt(s.wiring.power.total(), 1) + " W"});
  t.addRow({"power rail width (min pitch)",
            fmt(s.gridMinPitch.widthOverMin, 1) + "x min"});
  t.addRow({"power rail width (ITRS pads)",
            fmt(s.gridItrs.widthOverMin, 1) + "x min"});
  t.addRow({"wake-up supply noise (ITRS bumps)",
            fmt(1e3 * s.wakeup.noiseVoltage, 1) + " mV"});
  t.print(os);
}

void printRoadmapComparison(std::ostream& os) {
  os << "Roadmap comparison (all subsystems, one row per node):\n";
  TextTable t({"node (nm)", "Vdd (V)", "Vth (V)", "Ioff (nA/um)", "FO4 (ps)",
               "power (W)", "theta_ja", "repeaters", "global P (W)",
               "rail W/Wmin", "wake noise (mV)"});
  for (const NodeSummary& s : summarizeRoadmap()) {
    const int f = s.node->featureNm;
    t.addRow({std::to_string(f), fmt(s.node->vdd, 2), fmt(s.vthRequired, 3),
              fmt(s.ioffNaUm, 1), fmt(s.fo4DelayPs, 1), fmt(s.maxPowerW, 0),
              fmt(s.thetaJaRequired, 2), util::fmtSci(s.wiring.repeaterCount, 1),
              fmt(s.wiring.power.total(), 0),
              fmt(s.gridMinPitch.widthOverMin, 1),
              fmt(1e3 * s.wakeup.noiseVoltage, 1)});
  }
  t.print(os);
}

}  // namespace nano::core
