// Experiment drivers: one function per paper table/figure, each returning
// the data series the paper plots (with the paper's reported values carried
// alongside for comparison). Shared by the bench binaries and the tests.
#pragma once

#include <array>
#include <vector>

#include "powergrid/irdrop.h"
#include "tech/itrs.h"

namespace nano::core {

// ---------------------------------------------------------------- Table 2

/// One node of the analytical Ioff-scaling table.
struct Table2Row {
  int nodeNm = 0;
  double vdd = 0.0;
  double coxeNorm = 0.0;       ///< electrical Cox, normalized to 180 nm
  double coxPhysNorm = 0.0;    ///< physical Cox, normalized to 180 nm
  double vthRequired = 0.0;    ///< V, for Ion = 750 uA/um
  double ioffNaUm = 0.0;       ///< model Ioff, nA/um
  double vthMetal = 0.0;       ///< metal-gate variant Vth
  double ioffMetalNaUm = 0.0;  ///< metal-gate Ioff, nA/um
  double ioffItrsNaUm = 0.0;   ///< ITRS projection
  // Paper-reported values for side-by-side comparison (NaN when the paper
  // does not report one).
  double paperVth = 0.0;
  double paperIoff = 0.0;
  double paperIoffMetal = 0.0;
};

struct Table2 {
  std::vector<Table2Row> rows;   ///< 180 -> 35 nm at nominal Vdd
  Table2Row row50At07;           ///< the parenthetical 50 nm @ 0.7 V case
  /// Roadmap Ioff growth factors (180 nm -> 35 nm).
  double modelGrowth = 0.0;
  double itrsGrowth = 0.0;
};

Table2 computeTable2();

// --------------------------------------------------------------- Figure 1

/// Pstatic/Pdynamic vs switching activity at 85 C for the three corners
/// the paper plots.
struct Fig1Point {
  double activity = 0.0;
  double ratio70nm09V = 0.0;
  double ratio50nm07V = 0.0;
  double ratio50nm06V = 0.0;
};
std::vector<Fig1Point> computeFigure1(int points = 9);

// --------------------------------------------------------------- Figure 2

/// Dual-Vth scalability: Ion gain of a -100 mV Vth step and the Ioff
/// penalty of a +20 % Ion target, per node.
struct Fig2Point {
  int nodeNm = 0;
  double ionGainPercent = 0.0;    ///< Ion increase for dVth = -100 mV
  double ioffPenaltyFor20 = 0.0;  ///< Ioff multiplier for +20 % Ion
};
std::vector<Fig2Point> computeFigure2();

// ----------------------------------------------------------- Figures 3, 4

/// Vth scaling policy as Vdd is reduced below nominal (35 nm).
enum class VthPolicy {
  Constant,        ///< Vth fixed at the nominal-Vdd value
  ConstantPstatic, ///< Vth lowered so Vdd*Ioff stays constant
  Conservative,    ///< Vth lowered so Ioff stays constant (Pstatic ~ Vdd)
};
inline constexpr std::array<VthPolicy, 3> kVthPolicies = {
    VthPolicy::Constant, VthPolicy::ConstantPstatic, VthPolicy::Conservative};
const char* policyName(VthPolicy policy);

/// One Vdd sample of Figures 3 and 4.
struct Fig34Point {
  double vdd = 0.0;
  std::array<double, 3> vthDesign{};   ///< design Vth per policy
  std::array<double, 3> delayNorm{};   ///< delay / delay(nominal) (Figure 3)
  std::array<double, 3> pdynOverPstat{};  ///< at activity 0.1 (Figure 4)
};

/// Sweep Vdd from `vddMin` to the node's nominal supply.
std::vector<Fig34Point> computeFigure34(int nodeNm = 35, int points = 9,
                                        double activity = 0.1,
                                        double vddMin = 0.2);

/// The Section 3.3 headline numbers.
struct Section33Claims {
  double delayRatioConstVthAt02 = 0.0;   ///< paper: 3.7x
  double delayRatioScaledAt02 = 0.0;     ///< paper: < 1.3x
  double dynReductionAt02 = 0.0;         ///< paper: 89 %
  double vddAtRatio10 = 0.0;             ///< paper: ~0.44 V
  double dynReductionAtRatio10 = 0.0;    ///< paper: 46 %
};
Section33Claims computeSection33Claims(double activity = 0.1);

// --------------------------------------------------------------- Figure 5

struct Fig5Row {
  int nodeNm = 0;
  powergrid::IrDropReport minPitch;
  powergrid::IrDropReport itrs;
};
/// `gridSolver` selects the mesh solver for the cross-check (Jacobi-CG vs
/// multigrid-CG); ignored when `withMeshCrossCheck` is false.
std::vector<Fig5Row> computeFigure5(
    bool withMeshCrossCheck = false,
    const powergrid::GridSolverOptions& gridSolver = {});

}  // namespace nano::core
