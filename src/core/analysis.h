// Per-node design analysis rollup: one call that characterizes a roadmap
// node end to end — device corner, gate speed, MPU power budget, packaging
// requirement, global wiring cost, and power-delivery picture. The
// "quickstart" view of the library.
#pragma once

#include <vector>

#include "interconnect/global_wiring.h"
#include "powergrid/irdrop.h"
#include "powergrid/transient.h"
#include "tech/itrs.h"
#include "thermal/package.h"

namespace nano::core {

/// End-to-end summary of one technology node.
struct NodeSummary {
  const tech::TechNode* node = nullptr;

  // Device corner (NMOS meeting the Ion target at nominal Vdd).
  double vthRequired = 0.0;   ///< V
  double ionUaUm = 0.0;       ///< uA/um
  double ioffNaUm = 0.0;      ///< nA/um at 25 C
  double ioffHotNaUm = 0.0;   ///< nA/um at 85 C

  // Gate speed.
  double fo4DelayPs = 0.0;
  double fo4PerCycle = 0.0;   ///< FO4 delays per local clock cycle

  // Power budget.
  double maxPowerW = 0.0;
  double supplyCurrentA = 0.0;
  double standbyCurrentBudgetA = 0.0;  ///< at the ITRS 10 % static cap

  // Packaging.
  double thetaJaRequired = 0.0;
  const thermal::PackagingSolution* packaging = nullptr;  ///< cheapest fit
  double coolingCostUsd = 0.0;

  // Global wiring.
  interconnect::GlobalWiringReport wiring;

  // Power delivery.
  powergrid::IrDropReport gridMinPitch;
  powergrid::IrDropReport gridItrs;
  powergrid::TransientReport wakeup;
};

/// Characterize one node (feature size in nm, on the roadmap).
NodeSummary summarizeNode(int featureNm);

/// Characterize every roadmap node, one summary per node in roadmap order.
/// Nodes are independent, so they run in parallel on the nano::exec pool.
std::vector<NodeSummary> summarizeRoadmap();

}  // namespace nano::core
