#include "core/design_space.h"

#include <cmath>
#include <limits>
#include <span>
#include <stdexcept>

#include "device/gate_model.h"
#include "device/mosfet.h"
#include "exec/exec.h"
#include "kernel/device_batch.h"
#include "obs/obs.h"
#include "util/numeric.h"

namespace nano::core {

namespace {

/// Nominal-corner reference shared by all points of one exploration. The
/// prepared DeviceKernel replaces the historical Mosfet-per-point
/// construction (which re-derived Cox, mobility and swing twice per grid
/// cell); its evaluators are bit-identical to that path.
struct Reference {
  kernel::DeviceKernel kern;
  const tech::TechNode* node = nullptr;
  double vdd0 = 0.0;
  double vth0 = 0.0;
  double loadCap = 0.0;
  double widthEff = 0.0;
  double freq = 0.0;
  double activity = 0.0;
  double delay0 = 0.0;
  double pdyn0 = 0.0;
  double pstat0 = 0.0;
};

double delayAt(const Reference& ref, double vdd, double vthDesign) {
  return ref.loadCap * vdd / ref.kern.ion(vthDesign, vdd, vdd);
}

double pdynAt(const Reference& ref, double vdd) {
  return ref.activity * ref.loadCap * vdd * vdd * ref.freq;
}

double pstatAt(const Reference& ref, double vdd, double vthDesign) {
  return vdd * ref.kern.ioff(vthDesign, vdd) * ref.widthEff;
}

Reference makeReference(const DesignSpaceOptions& options) {
  const tech::TechNode& node = tech::nodeByFeature(options.nodeNm);
  // Vth is specified at nominal Vdd; DIBL applies below it.
  Reference ref{kernel::DeviceKernel::fromNode(node, node.vdd)};
  ref.node = &node;
  ref.vdd0 = node.vdd;
  ref.vth0 = device::solveVthForIon(*ref.node, ref.node->ionTarget);
  const device::InverterModel inv(*ref.node, ref.vth0, ref.vdd0);
  ref.loadCap = 4.0 * inv.inputCap() +
                ref.node->localWireCapPerM * ref.node->avgLocalWireLength +
                inv.outputCap();
  ref.widthEff = 0.5 * (inv.wn() + device::kPmosCurrentFactor * inv.wp());
  ref.freq = ref.node->clockLocal;
  ref.activity = options.activity;
  ref.delay0 = delayAt(ref, ref.vdd0, ref.vth0);
  ref.pdyn0 = pdynAt(ref, ref.vdd0);
  ref.pstat0 = pstatAt(ref, ref.vdd0, ref.vth0);
  return ref;
}

/// Assemble a point from already-evaluated currents (the batch path) with
/// the exact expressions of the scalar helpers above.
OperatingPoint fromCurrents(const Reference& ref, double vdd,
                            double vthDesign, double ionA, double ioffA) {
  OperatingPoint pt;
  pt.vdd = vdd;
  pt.vthDesign = vthDesign;
  pt.delayNorm = ref.loadCap * vdd / ionA / ref.delay0;
  const double pdyn = pdynAt(ref, vdd);
  const double pstat = vdd * ioffA * ref.widthEff;
  pt.pdynNorm = pdyn / ref.pdyn0;
  pt.pstatNorm = pstat / ref.pstat0;
  pt.ptotalNorm = (pdyn + pstat) / (ref.pdyn0 + ref.pstat0);
  pt.staticFraction = pstat / (pdyn + pstat);
  return pt;
}

OperatingPoint evaluate(const Reference& ref, double vdd, double vthDesign) {
  return fromCurrents(ref, vdd, vthDesign, ref.kern.ion(vthDesign, vdd, vdd),
                      ref.kern.ioff(vthDesign, vdd));
}

}  // namespace

OperatingPoint evaluatePoint(const DesignSpaceOptions& options, double vdd,
                             double vthDesign) {
  if (vdd <= 0) throw std::invalid_argument("evaluatePoint: vdd <= 0");
  return evaluate(makeReference(options), vdd, vthDesign);
}

std::vector<OperatingPoint> exploreDesignSpace(
    const DesignSpaceOptions& options) {
  if (options.vddSteps < 2 || options.vthSteps < 2) {
    throw std::invalid_argument("exploreDesignSpace: need >= 2 steps");
  }
  const Reference ref = makeReference(options);
  // Flatten the Vdd x Vth grid so every cell is one independent slot;
  // slot k = (vdd index, vth index) reproduces the serial nesting order.
  const std::vector<double> vdds =
      util::linspace(options.vddMin, ref.vdd0, options.vddSteps);
  const std::vector<double> vths =
      util::linspace(options.vthMin, options.vthMax, options.vthSteps);
  const std::size_t n = vdds.size() * vths.size();

  // SoA staging for the batched device kernels: each exec block hands its
  // contiguous subrange to ionBatch/ioffBatch, so the family dispatch and
  // the prepared constants are amortized over the block instead of paying
  // a Mosfet construction per cell. Slot k is written only by its block;
  // results are bit-identical at any thread count and batch split.
  std::vector<double> vth(n);
  std::vector<double> bias(n);
  for (std::size_t k = 0; k < n; ++k) {
    bias[k] = vdds[k / vths.size()];
    vth[k] = vths[k % vths.size()];
  }
  std::vector<double> ion(n);
  std::vector<double> ioff(n);
  std::vector<OperatingPoint> pts(n);
  exec::parallelForBlocked(n, [&](std::size_t begin, std::size_t end) {
    const std::size_t len = end - begin;
    const std::span<const double> v{vth.data() + begin, len};
    const std::span<const double> b{bias.data() + begin, len};
    ref.kern.ionBatch(v, b, b, {ion.data() + begin, len});
    ref.kern.ioffBatch(v, b, {ioff.data() + begin, len});
    for (std::size_t k = begin; k < end; ++k) {
      pts[k] = fromCurrents(ref, bias[k], vth[k], ion[k], ioff[k]);
    }
  });
  return pts;
}

OperatingPoint optimalPoint(const DesignSpaceOptions& options,
                            double delayTarget, double maxStaticFraction) {
  if (delayTarget < 1e-3) {
    throw std::invalid_argument("optimalPoint: bad delay target");
  }
  if (maxStaticFraction <= 0 || maxStaticFraction > 1.0) {
    throw std::invalid_argument("optimalPoint: bad static cap");
  }
  const Reference ref = makeReference(options);

  // For a fixed Vdd, the fastest admissible Vth is the one meeting the
  // delay target exactly (delay is monotone increasing in Vth); total
  // power at fixed Vdd is then minimized by the HIGHEST Vth that still
  // meets timing (static power falls, dynamic unchanged).
  auto bestAtVdd = [&](double vdd) -> OperatingPoint {
    auto delayErr = [&](double vth) {
      return delayAt(ref, vdd, vth) / ref.delay0 - delayTarget;
    };
    OperatingPoint pt;
    pt.ptotalNorm = std::numeric_limits<double>::infinity();
    // If even the lowest Vth misses the target, Vdd is infeasible.
    if (delayErr(options.vthMin) > 0.0) return pt;
    double vth = options.vthMax;
    if (delayErr(options.vthMax) > 0.0) {
      // Per-point recovery: a failed solve marks this Vdd infeasible
      // instead of throwing out of the parallel sweep.
      const util::SolveResult r = util::tryBracketAndSolve(
          delayErr, options.vthMin, options.vthMax, 0, 1e-9);
      if (r.status == util::SolverStatus::BracketFailure ||
          r.status == util::SolverStatus::NanDetected) {
        NANO_OBS_COUNT("core/design_point_failed", 1);
        return pt;
      }
      vth = r.x;
    }
    OperatingPoint candidate = evaluate(ref, vdd, vth);
    // The chosen Vth is the highest meeting timing, which already
    // minimizes the static share at this Vdd; if it still exceeds the
    // cap, this Vdd is infeasible.
    if (candidate.staticFraction > maxStaticFraction) return pt;
    return candidate;
  };

  // Evaluate each Vdd in parallel, then reduce serially with the same
  // strict < as before: the first minimum in sweep order wins regardless
  // of thread count.
  const std::vector<double> vdds =
      util::linspace(options.vddMin, ref.vdd0, 4 * options.vddSteps);
  const std::vector<OperatingPoint> pts = exec::parallelMap<OperatingPoint>(
      vdds.size(), [&](std::size_t i) { return bestAtVdd(vdds[i]); });
  OperatingPoint best;
  best.ptotalNorm = std::numeric_limits<double>::infinity();
  for (const OperatingPoint& pt : pts) {
    if (pt.ptotalNorm < best.ptotalNorm) best = pt;
  }
  if (!std::isfinite(best.ptotalNorm)) {
    throw std::runtime_error("optimalPoint: delay target infeasible");
  }
  return best;
}

}  // namespace nano::core
