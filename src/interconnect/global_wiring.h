// System-level global-wiring rollup (BACPAC-style): estimates per node how
// much global wire a high-performance MPU carries, how many repeaters it
// needs, and what the repeated-wire subsystem costs in power — the numbers
// behind the paper's Section 2.2 claims (~10^4 repeaters at 180 nm growing
// to ~10^6 at 50 nm, >50 W of global signaling power, and ITRS global
// clock rates being reachable on unscaled top-level wires).
#pragma once

#include "interconnect/repeater.h"
#include "interconnect/wire.h"
#include "tech/itrs.h"

namespace nano::interconnect {

/// Knobs of the global-wiring estimate.
struct GlobalWiringOptions {
  /// Switching activity of global signals (transitions/cycle).
  double activity = 0.15;
  /// Global net count model: nets = rentCoefficient * gates^rentExponent
  /// (gates = logic transistors / 4). Calibrated so the 180 nm node carries
  /// ~1e4 repeaters, matching the Itanium data point the paper cites [11].
  double rentCoefficient = 0.25;
  double rentExponent = 0.6;
  /// Average global net length as a fraction of the die edge.
  double avgLengthFraction = 0.4;
  /// Use the 180 nm top-level wire geometry at every node ("unscaled top
  /// level wiring" scenario of [9]) instead of the node's scaled geometry.
  bool unscaledWires = false;
};

/// Results of the rollup. Powers in W, lengths in m, delays in s.
struct GlobalWiringReport {
  double dieEdge = 0.0;
  double globalNetCount = 0.0;
  double avgNetLength = 0.0;
  double totalWireLength = 0.0;
  WireRc wireRc;
  RepeaterDesign design;
  double repeaterCount = 0.0;
  LinePower power;                 ///< total over all global nets
  double delayPerMeter = 0.0;
  double dieCrossingDelay = 0.0;   ///< one die edge, repeated line
  double cyclesToCrossDie = 0.0;   ///< at the node's global clock
  double repeaterAreaFraction = 0.0;  ///< total repeater area / die area
};

/// Run the rollup for one node.
GlobalWiringReport analyzeGlobalWiring(const tech::TechNode& node,
                                       const GlobalWiringOptions& options = {});

}  // namespace nano::interconnect
