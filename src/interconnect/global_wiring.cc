#include "interconnect/global_wiring.h"

#include <cmath>

namespace nano::interconnect {

GlobalWiringReport analyzeGlobalWiring(const tech::TechNode& node,
                                       const GlobalWiringOptions& options) {
  GlobalWiringReport rep;
  rep.dieEdge = std::sqrt(node.dieArea);

  const double gates = static_cast<double>(node.logicTransistors) / 4.0;
  rep.globalNetCount =
      options.rentCoefficient * std::pow(gates, options.rentExponent);
  rep.avgNetLength = options.avgLengthFraction * rep.dieEdge;
  rep.totalWireLength = rep.globalNetCount * rep.avgNetLength;

  const WireGeometry geom = options.unscaledWires ? unscaledGlobalWire(node)
                                                  : topLevelWire(node);
  rep.wireRc = computeWireRc(geom);

  const RepeaterDriver driver = RepeaterDriver::fromNode(node);
  rep.design = optimalRepeatersNumeric(driver, rep.wireRc);
  rep.delayPerMeter = rep.design.delayPerMeter;

  // Repeater population: every net is repeated at the optimal pitch.
  rep.repeaterCount = rep.globalNetCount *
                      repeaterCountForLength(rep.design, rep.avgNetLength);

  rep.power = repeatedLinePower(driver, rep.wireRc, rep.design,
                                rep.totalWireLength, node.clockGlobal,
                                options.activity);

  rep.dieCrossingDelay =
      repeatedLineDelay(driver, rep.wireRc, rep.design, rep.dieEdge);
  rep.cyclesToCrossDie = rep.dieCrossingDelay * node.clockGlobal;
  rep.repeaterAreaFraction =
      rep.repeaterCount * rep.design.size * driver.unitArea / node.dieArea;
  return rep;
}

}  // namespace nano::interconnect
