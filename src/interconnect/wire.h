// Wire parasitic models: per-length resistance and capacitance from
// geometry (Sakurai-style empirical capacitance with area, fringe and
// lateral coupling terms), and helpers to derive top-level ("global") wire
// geometries from a roadmap node.
#pragma once

#include "tech/itrs.h"

namespace nano::interconnect {

/// Physical cross-section of one routing wire.
struct WireGeometry {
  double width = 0.5e-6;        ///< m
  double spacing = 0.5e-6;      ///< m, to each lateral neighbor
  double thickness = 1.0e-6;    ///< m
  double ildThickness = 0.8e-6; ///< m, dielectric below (and above) the wire
  double resistivity = 2.2e-8;  ///< ohm*m (Cu incl. barrier)
  double permittivity = 3.5;    ///< relative dielectric constant
};

/// Per-length electrical parameters of a wire in its environment.
struct WireRc {
  double resistancePerM = 0.0;     ///< ohm/m
  double groundCapPerM = 0.0;      ///< F/m, to planes above/below
  double couplingCapPerM = 0.0;    ///< F/m, to ONE lateral neighbor
  /// Total switched capacitance assuming quiet neighbors (both coupling
  /// caps count once), F/m.
  [[nodiscard]] double totalCapPerM() const {
    return groundCapPerM + 2.0 * couplingCapPerM;
  }
  /// Worst-case effective capacitance when both neighbors switch the
  /// opposite way (Miller factor 2 on coupling), F/m.
  [[nodiscard]] double worstCaseCapPerM() const {
    return groundCapPerM + 4.0 * couplingCapPerM;
  }
};

/// Compute per-length R and C for a geometry. Capacitance uses the
/// Sakurai/BACPAC empirical fit for a wire between two ground planes with
/// two lateral neighbors; accurate to ~10 % for aspect ratios near 1-3.
WireRc computeWireRc(const WireGeometry& geometry);

/// Top-level (global tier) wire geometry of a node, `widthMultiple` times
/// the minimum width. Spacing stays one minimum pitch minus width when
/// widened rails are drawn in a power grid; for signal wires pass
/// matchSpacingToWidth = true to keep spacing == width.
WireGeometry topLevelWire(const tech::TechNode& node, double widthMultiple = 1.0,
                          bool matchSpacingToWidth = true);

/// The "unscaled" global wire the paper cites from [9]: 180 nm-generation
/// top-level geometry (1.2 um pitch, AR 2) reused at every node, in the
/// node's dielectric.
WireGeometry unscaledGlobalWire(const tech::TechNode& node);

}  // namespace nano::interconnect
