#include "interconnect/repeater.h"

#include <cmath>
#include <stdexcept>

#include "interconnect/elmore.h"
#include "obs/obs.h"
#include "util/numeric.h"
#include "util/units.h"

namespace nano::interconnect {

using namespace nano::units;

RepeaterDriver RepeaterDriver::fromNode(const tech::TechNode& node) {
  const double vth = device::solveVthForIon(node, node.ionTarget);
  // Unit repeater: a minimum balanced inverter (Wn/L=2, Wp/L=4).
  const device::GateGeometry unitGeom{2.0, 4.0};
  const device::InverterModel inv(node, vth, node.vdd, unitGeom);
  RepeaterDriver d;
  // Effective switching resistance: average of N and P Req with the same
  // 3/4*Vdd/I model the gate delay uses.
  const double reqN = 0.75 * node.vdd / inv.driveCurrentN();
  const double reqP = 0.75 * node.vdd / inv.driveCurrentP();
  d.unitResistance = 0.5 * (reqN + reqP);
  d.unitInputCap = inv.inputCap();
  d.unitOutputCap = inv.outputCap();
  d.unitLeakage = inv.leakagePower();
  // Layout: device widths plus diffusion/poly overhead, ~ (Wn+Wp) * 5L.
  const double drawnL = node.featureNm * nm;
  d.unitArea = (inv.wn() + inv.wp()) * 5.0 * drawnL;
  d.vdd = node.vdd;
  return d;
}

double repeaterSegmentDelay(const RepeaterDriver& driver, const WireRc& rc,
                            double size, double segmentLength) {
  if (size <= 0 || segmentLength <= 0) {
    throw std::invalid_argument("repeaterSegmentDelay: non-positive design");
  }
  const double rdrv = driver.unitResistance / size;
  const double cload = driver.unitInputCap * size;   // next repeater
  const double cself = driver.unitOutputCap * size;  // own diffusion
  const double r = rc.resistancePerM * segmentLength;
  const double c = rc.totalCapPerM() * segmentLength;
  return 0.693 * rdrv * cself + 0.377 * r * c +
         0.693 * (rdrv * c + rdrv * cload + r * cload);
}

RepeaterDesign optimalRepeatersClosedForm(const RepeaterDriver& driver,
                                          const WireRc& rc) {
  RepeaterDesign d;
  const double r = rc.resistancePerM;
  const double c = rc.totalCapPerM();
  d.size = std::sqrt(driver.unitResistance * c / (r * driver.unitInputCap));
  d.segmentLength = std::sqrt(
      2.0 * driver.unitResistance * (driver.unitInputCap + driver.unitOutputCap) /
      (r * c));
  d.delayPerMeter =
      repeaterSegmentDelay(driver, rc, d.size, d.segmentLength) / d.segmentLength;
  return d;
}

RepeaterDesign optimalRepeatersNumeric(const RepeaterDriver& driver,
                                       const WireRc& rc) {
  const RepeaterDesign seed = optimalRepeatersClosedForm(driver, rc);
  // Nested golden search around the closed-form seed (within 8x each way).
  auto bestLengthFor = [&](double size) {
    auto f = [&](double len) {
      return repeaterSegmentDelay(driver, rc, size, len) / len;
    };
    return util::tryMinimizeGolden(f, seed.segmentLength / 8.0,
                                   seed.segmentLength * 8.0,
                                   seed.segmentLength * 1e-6);
  };
  auto delayForSize = [&](double size) { return bestLengthFor(size).fx; };
  const auto sizeOpt =
      util::tryMinimizeGolden(delayForSize, seed.size / 8.0, seed.size * 8.0,
                              seed.size * 1e-6);
  const auto lenOpt = bestLengthFor(sizeOpt.x);
  if (!sizeOpt.diagnostics().ok() || !lenOpt.diagnostics().ok()) {
    // Recovery: the closed-form seed is a sound design; prefer it over a
    // half-shrunk or poisoned golden-section iterate.
    NANO_OBS_COUNT("interconnect/repeater_opt_fallback", 1);
    return seed;
  }
  RepeaterDesign d;
  d.size = sizeOpt.x;
  d.segmentLength = lenOpt.x;
  d.delayPerMeter =
      repeaterSegmentDelay(driver, rc, d.size, d.segmentLength) / d.segmentLength;
  return d;
}

double repeatedLineDelay(const RepeaterDriver& driver, const WireRc& rc,
                         const RepeaterDesign& design, double length) {
  const double nSegments = std::max(1.0, std::round(length / design.segmentLength));
  const double segLen = length / nSegments;
  return nSegments * repeaterSegmentDelay(driver, rc, design.size, segLen);
}

LinePower repeatedLinePower(const RepeaterDriver& driver, const WireRc& rc,
                            const RepeaterDesign& design, double length,
                            double freq, double activity) {
  LinePower p;
  const double nRep = repeaterCountForLength(design, length);
  const double cWire = rc.totalCapPerM() * length;
  const double cRep = nRep * design.size *
                      (driver.unitInputCap + driver.unitOutputCap);
  const double vdd2 = driver.vdd * driver.vdd;
  p.wire = activity * cWire * vdd2 * freq;
  p.repeaterDyn = activity * cRep * vdd2 * freq;
  p.leakage = nRep * design.size * driver.unitLeakage;
  return p;
}

double repeaterCountForLength(const RepeaterDesign& design, double length) {
  return std::max(1.0, std::round(length / design.segmentLength));
}

}  // namespace nano::interconnect
