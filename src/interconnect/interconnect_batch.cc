#include "interconnect/interconnect_batch.h"

#include <cassert>
#include <stdexcept>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace nano::interconnect {

using kernel::BatchShape;
using kernel::fitsAnyShape;
using kernel::Isa;
using kernel::KernelFamily;

namespace {

// Scalar reference: the exact expression of repeaterSegmentDelay() with
// the batch-invariant driver/wire constants hoisted (each hoisted value is
// the same full subexpression the scalar API computes, so this is
// bit-identical to calling repeaterSegmentDelay per element).
void segmentDelayScalar(double unitR, double cin, double cout, double rPerM,
                        double cPerM, const double* size, const double* length,
                        double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const double rdrv = unitR / size[i];
    const double cload = cin * size[i];
    const double cself = cout * size[i];
    const double r = rPerM * length[i];
    const double c = cPerM * length[i];
    out[i] = 0.693 * rdrv * cself + 0.377 * r * c +
             0.693 * (rdrv * c + rdrv * cload + r * cload);
  }
}

#if defined(__x86_64__) || defined(__i386__)
// AVX2 variant: same per-lane operation order as segmentDelayScalar —
// mul/add/div only, no FMA (vdivpd and vmulpd/vaddpd are correctly
// rounded, so every lane matches the scalar result bit-for-bit). The
// remainder rows run the scalar reference.
__attribute__((target("avx2"))) void segmentDelayAvx2(
    double unitR, double cin, double cout, double rPerM, double cPerM,
    const double* size, const double* length, double* out, std::size_t n) {
  const __m256d vUnitR = _mm256_set1_pd(unitR);
  const __m256d vCin = _mm256_set1_pd(cin);
  const __m256d vCout = _mm256_set1_pd(cout);
  const __m256d vRPerM = _mm256_set1_pd(rPerM);
  const __m256d vCPerM = _mm256_set1_pd(cPerM);
  const __m256d k0693 = _mm256_set1_pd(0.693);
  const __m256d k0377 = _mm256_set1_pd(0.377);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d s = _mm256_loadu_pd(size + i);
    const __m256d len = _mm256_loadu_pd(length + i);
    const __m256d rdrv = _mm256_div_pd(vUnitR, s);
    const __m256d cload = _mm256_mul_pd(vCin, s);
    const __m256d cself = _mm256_mul_pd(vCout, s);
    const __m256d r = _mm256_mul_pd(vRPerM, len);
    const __m256d c = _mm256_mul_pd(vCPerM, len);
    // (0.693*rdrv)*cself + (0.377*r)*c + 0.693*((rdrv*c + rdrv*cload) + r*cload)
    const __m256d t1 = _mm256_mul_pd(_mm256_mul_pd(k0693, rdrv), cself);
    const __m256d t2 = _mm256_mul_pd(_mm256_mul_pd(k0377, r), c);
    const __m256d inner = _mm256_add_pd(
        _mm256_add_pd(_mm256_mul_pd(rdrv, c), _mm256_mul_pd(rdrv, cload)),
        _mm256_mul_pd(r, cload));
    const __m256d t3 = _mm256_mul_pd(k0693, inner);
    _mm256_storeu_pd(out + i, _mm256_add_pd(_mm256_add_pd(t1, t2), t3));
  }
  segmentDelayScalar(unitR, cin, cout, rPerM, cPerM, size + i, length + i,
                     out + i, n - i);
}
#endif

void linePowerScalar(const RepeaterDriver& driver, const WireRc& rc,
                     const RepeaterDesign& design, double freq,
                     double activity, const double* length, double* out,
                     std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] =
        repeatedLinePower(driver, rc, design, length[i], freq, activity).total();
  }
}

}  // namespace

KernelFamily<void (*)(double, double, double, double, double, const double*,
                      const double*, double*, std::size_t)>&
segmentDelayFamily() {
  static auto* family = [] {
    auto* f = new KernelFamily<void (*)(double, double, double, double, double,
                                        const double*, const double*, double*,
                                        std::size_t)>(
        "interconnect/segment_delay");
    f->add("segment_delay_scalar", Isa::Scalar, &fitsAnyShape,
           &segmentDelayScalar);
#if defined(__x86_64__) || defined(__i386__)
    f->add("segment_delay_avx2", Isa::Avx2, &fitsAnyShape, &segmentDelayAvx2);
#endif
    return f;
  }();
  return *family;
}

KernelFamily<void (*)(const RepeaterDriver&, const WireRc&,
                      const RepeaterDesign&, double, double, const double*,
                      double*, std::size_t)>&
linePowerFamily() {
  static auto* family = [] {
    auto* f = new KernelFamily<void (*)(const RepeaterDriver&, const WireRc&,
                                        const RepeaterDesign&, double, double,
                                        const double*, double*, std::size_t)>(
        "interconnect/line_power");
    f->add("line_power_scalar", Isa::Scalar, &fitsAnyShape, &linePowerScalar);
    return f;
  }();
  return *family;
}

void segmentDelayBatch(const RepeaterDriver& driver, const WireRc& rc,
                       std::span<const double> size,
                       std::span<const double> length, std::span<double> out) {
  const std::size_t n = out.size();
  assert(size.size() == n && length.size() == n);
  for (std::size_t i = 0; i < n; ++i) {
    if (size[i] <= 0 || length[i] <= 0) {
      throw std::invalid_argument("segmentDelayBatch: non-positive design");
    }
  }
  const BatchShape shape{n, true, 0, 0};
  segmentDelayFamily().pick(shape)(driver.unitResistance, driver.unitInputCap,
                                   driver.unitOutputCap, rc.resistancePerM,
                                   rc.totalCapPerM(), size.data(),
                                   length.data(), out.data(), n);
}

void linePowerBatch(const RepeaterDriver& driver, const WireRc& rc,
                    const RepeaterDesign& design,
                    std::span<const double> length, double freq,
                    double activity, std::span<double> out) {
  const std::size_t n = out.size();
  assert(length.size() == n);
  const BatchShape shape{n, true, 0, 0};
  linePowerFamily().pick(shape)(driver, rc, design, freq, activity,
                                length.data(), out.data(), n);
}

}  // namespace nano::interconnect
