// Repeater insertion for long RC lines: the "current signaling paradigm of
// inserting large CMOS buffers along an RC line" the paper analyzes in
// Section 2.2. Provides the Bakoglu closed-form optimum, a numeric
// (Elmore-based) optimizer used to validate it, and delay/power/area
// rollups for a repeated line.
#pragma once

#include "device/gate_model.h"
#include "interconnect/wire.h"
#include "tech/itrs.h"

namespace nano::interconnect {

/// Electrical characterization of a unit-size repeater (minimum inverter).
struct RepeaterDriver {
  double unitResistance = 0.0;  ///< switching resistance of a 1x repeater, ohm
  double unitInputCap = 0.0;    ///< F
  double unitOutputCap = 0.0;   ///< F
  double unitLeakage = 0.0;     ///< W at operating conditions
  double unitArea = 0.0;        ///< layout area of a 1x repeater, m^2
  double vdd = 0.0;

  /// Characterize from a roadmap node at its nominal supply and roadmap Vth.
  static RepeaterDriver fromNode(const tech::TechNode& node);
};

/// A repeater insertion solution for a given wire.
struct RepeaterDesign {
  double segmentLength = 0.0;  ///< distance between repeaters, m
  double size = 0.0;           ///< repeater size, multiples of unit inverter
  double delayPerMeter = 0.0;  ///< s/m of the repeated line
};

/// Delay of one repeater stage of `size` driving `segmentLength` of wire
/// plus the next repeater's input, s.
double repeaterSegmentDelay(const RepeaterDriver& driver, const WireRc& rc,
                            double size, double segmentLength);

/// Bakoglu closed-form optimum: h = sqrt(R0*c / (r*Cin0)),
/// L = sqrt(2*R0*(Cin0+Cout0) / (r*c)).
RepeaterDesign optimalRepeatersClosedForm(const RepeaterDriver& driver,
                                          const WireRc& rc);

/// Numeric optimum of delay/meter over (size, segmentLength) by nested
/// golden-section search on the Elmore segment delay. Agrees with the
/// closed form to a few percent.
RepeaterDesign optimalRepeatersNumeric(const RepeaterDriver& driver,
                                       const WireRc& rc);

/// Total 50 % delay of a length-`length` line repeated per `design`, s.
double repeatedLineDelay(const RepeaterDriver& driver, const WireRc& rc,
                         const RepeaterDesign& design, double length);

/// Power of a repeated line at clock `freq` and activity factor `activity`.
struct LinePower {
  double wire = 0.0;       ///< W switching the wire capacitance
  double repeaterDyn = 0.0;///< W switching repeater input+output caps
  double leakage = 0.0;    ///< W repeater leakage
  [[nodiscard]] double total() const { return wire + repeaterDyn + leakage; }
};
LinePower repeatedLinePower(const RepeaterDriver& driver, const WireRc& rc,
                            const RepeaterDesign& design, double length,
                            double freq, double activity);

/// Repeaters needed for a run of `length` (at least 1 segment).
double repeaterCountForLength(const RepeaterDesign& design, double length);

}  // namespace nano::interconnect
