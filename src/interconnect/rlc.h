// Inductance-aware wire analysis. The paper lists "full-chip inductance
// extraction" among the nanometer challenges and leans on inductive
// coupling in its signaling discussion (Section 2.2); this module provides
// the wire inductance estimates behind those numbers and classifies when a
// global line leaves the RC regime (where Elmore/repeater formulas hold)
// for the RLC/transmission-line regime.
#pragma once

#include "interconnect/repeater.h"
#include "interconnect/wire.h"

namespace nano::interconnect {

/// Per-length inductive parameters of a wire in its return environment.
struct WireL {
  double selfInductancePerM = 0.0;    ///< H/m, partial self inductance
  double loopInductancePerM = 0.0;    ///< H/m, with the given return distance
  double mutualToNeighborPerM = 0.0;  ///< H/m, to an adjacent parallel wire
};

/// Estimate inductance for a wire of geometry `g` whose current returns at
/// distance `returnDistance` (e.g. the power-grid rail spacing). Uses the
/// standard partial-inductance expressions for rectangular conductors.
WireL computeWireL(const WireGeometry& g, double returnDistance);

/// RLC regime classification of a driven line (Ismail/Friedman-style).
struct RlcReport {
  double timeOfFlight = 0.0;      ///< s, L*C wave propagation over the length
  double rcDelay = 0.0;           ///< s, 50 % RC-only estimate
  double characteristicImpedance = 0.0;  ///< ohm, sqrt(L/C)
  double attenuation = 0.0;       ///< R_total / (2 * Z0): >> 1 means RC-like
  bool inductanceMatters = false; ///< attenuation < ~1 and driver fast enough
  double delayEstimate = 0.0;     ///< s, max(time of flight, RC estimate)
};

/// Analyze a line of `length` with per-length R/C from `rc`, inductance
/// from `l`, driver resistance `rdrv` and load `cload`.
RlcReport analyzeRlcLine(const WireRc& rc, const WireL& l, double length,
                         double rdrv, double cload);

/// The Section 2.2 question for one node: is a repeater segment of the
/// optimal length still RC-dominated (so the Bakoglu insertion model is
/// valid)? Returns the report for one optimal segment.
RlcReport repeaterSegmentRlc(const tech::TechNode& node);

}  // namespace nano::interconnect
