#include "interconnect/elmore.h"

#include <cmath>
#include <stdexcept>

namespace nano::interconnect {

RcTree::RcTree(double rootCap) {
  parent_.push_back(0);
  resistance_.push_back(0.0);
  cap_.push_back(rootCap);
}

std::size_t RcTree::addNode(std::size_t parent, double resistance, double cap) {
  if (parent >= parent_.size()) {
    throw std::out_of_range("RcTree::addNode: bad parent");
  }
  if (resistance < 0 || cap < 0) {
    throw std::invalid_argument("RcTree::addNode: negative R or C");
  }
  parent_.push_back(parent);
  resistance_.push_back(resistance);
  cap_.push_back(cap);
  return parent_.size() - 1;
}

void RcTree::addCap(std::size_t node, double cap) {
  cap_.at(node) += cap;
}

double RcTree::totalCap() const {
  double sum = 0.0;
  for (double c : cap_) sum += c;
  return sum;
}

std::vector<double> RcTree::downstreamCap() const {
  // Children always have larger indices than their parent (construction
  // order), so one reverse sweep accumulates subtree capacitance.
  std::vector<double> down = cap_;
  for (std::size_t i = parent_.size(); i-- > 1;) {
    down[parent_[i]] += down[i];
  }
  return down;
}

double RcTree::elmoreDelay(std::size_t node, double rsource) const {
  if (node >= parent_.size()) {
    throw std::out_of_range("RcTree::elmoreDelay: bad node");
  }
  const std::vector<double> down = downstreamCap();
  // Elmore = sum over edges on the root->node path of R_edge * C_downstream,
  // plus the source resistance times all capacitance.
  double delay = rsource * down[0];
  for (std::size_t i = node; i != 0; i = parent_[i]) {
    delay += resistance_[i] * down[i];
  }
  return delay;
}

double RcTree::secondMoment(std::size_t node, double rsource) const {
  if (node >= parent_.size()) {
    throw std::out_of_range("RcTree::secondMoment: bad node");
  }
  // Per-node Elmore (with the source resistance folded in), then the same
  // path-resistance accumulation with weights C_k * elmore(k).
  const std::vector<double> down = downstreamCap();
  std::vector<double> elmore(parent_.size(), rsource * down[0]);
  for (std::size_t i = 1; i < parent_.size(); ++i) {
    elmore[i] = elmore[parent_[i]] + resistance_[i] * down[i];
  }
  // Weighted downstream sums: sum of C_k * elmore(k) in each subtree.
  std::vector<double> downCE(parent_.size());
  for (std::size_t i = 0; i < parent_.size(); ++i) {
    downCE[i] = cap_[i] * elmore[i];
  }
  for (std::size_t i = parent_.size(); i-- > 1;) {
    downCE[parent_[i]] += downCE[i];
  }
  double m2 = rsource * downCE[0];
  for (std::size_t i = node; i != 0; i = parent_[i]) {
    m2 += resistance_[i] * downCE[i];
  }
  return m2;
}

double RcTree::delay50(std::size_t node, double rsource) const {
  return 0.693 * elmoreDelay(node, rsource);
}

double RcTree::delayD2M(std::size_t node, double rsource) const {
  const double m1 = elmoreDelay(node, rsource);
  const double m2 = secondMoment(node, rsource);
  if (m2 <= 0.0) return 0.0;
  return 0.693 * m1 * m1 / std::sqrt(m2);
}

LineTree buildLine(const WireRc& rc, double length, int segments,
                   double loadCap) {
  if (segments < 1) throw std::invalid_argument("buildLine: segments < 1");
  if (length <= 0) throw std::invalid_argument("buildLine: length <= 0");
  LineTree lt;
  const double rSeg = rc.resistancePerM * length / segments;
  const double cSeg = rc.totalCapPerM() * length / segments;
  // Half-segment cap at the root, full at interior joints, half at far end.
  lt.tree = RcTree(0.5 * cSeg);
  std::size_t prev = 0;
  for (int i = 0; i < segments; ++i) {
    const double nodeCap = (i + 1 == segments) ? 0.5 * cSeg : cSeg;
    prev = lt.tree.addNode(prev, rSeg, nodeCap);
  }
  lt.tree.addCap(prev, loadCap);
  lt.farEnd = prev;
  return lt;
}

double distributedLineDelay(const WireRc& rc, double length, double rdrv,
                            double cload) {
  const double r = rc.resistancePerM * length;
  const double c = rc.totalCapPerM() * length;
  // Sakurai's 50% delay fit for driver + distributed line + load.
  return 0.377 * r * c + 0.693 * (rdrv * c + rdrv * cload + r * cload);
}

}  // namespace nano::interconnect
