#include "interconnect/wire.h"

#include <cmath>
#include <stdexcept>

#include "util/units.h"

namespace nano::interconnect {

using namespace nano::units;

WireRc computeWireRc(const WireGeometry& g) {
  if (g.width <= 0 || g.thickness <= 0 || g.spacing <= 0 || g.ildThickness <= 0) {
    throw std::invalid_argument("computeWireRc: non-positive geometry");
  }
  WireRc rc;
  rc.resistancePerM = g.resistivity / (g.width * g.thickness);

  const double eps = g.permittivity * eps0;
  const double w = g.width / g.ildThickness;   // w/h
  const double t = g.thickness / g.ildThickness;  // t/h
  const double s = g.spacing / g.ildThickness;    // s/h

  // Sakurai-Tamaru style fit for a line over a plane with two neighbors
  // (doubled for planes above and below, as in multi-level global stacks).
  const double cGroundOnePlane =
      eps * (1.15 * w + 2.80 * std::pow(t, 0.222));
  rc.groundCapPerM = 2.0 * cGroundOnePlane;

  const double cCouple =
      eps * (0.03 * w + 0.83 * t - 0.07 * std::pow(t, 0.222)) *
      std::pow(s, -1.34);
  rc.couplingCapPerM = std::max(cCouple, 0.0);
  return rc;
}

WireGeometry topLevelWire(const tech::TechNode& node, double widthMultiple,
                          bool matchSpacingToWidth) {
  WireGeometry g;
  const double wmin = node.minGlobalWireWidth();
  g.width = widthMultiple * wmin;
  g.spacing = matchSpacingToWidth ? g.width : wmin;
  g.thickness = node.globalWireThickness();
  // Top-tier ILD thickness tracks the metal thickness (AR ~1 dielectric).
  g.ildThickness = 0.8 * g.thickness;
  g.resistivity = node.metalResistivity;
  g.permittivity = node.ildPermittivity;
  return g;
}

WireGeometry unscaledGlobalWire(const tech::TechNode& node) {
  WireGeometry g;
  g.width = 0.6 * um;       // 180 nm generation: 1.2 um pitch
  g.spacing = 0.6 * um;
  g.thickness = 1.2 * um;   // AR 2
  g.ildThickness = 0.96 * um;
  g.resistivity = node.metalResistivity;
  g.permittivity = node.ildPermittivity;
  return g;
}

}  // namespace nano::interconnect
