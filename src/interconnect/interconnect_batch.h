// SoA batch evaluation of the repeater delay/power formulas.
//
// The Elmore segment delay is a pure elementwise mul/add/div expression,
// so the AVX2 variant replicates the scalar operation order lane-by-lane
// (division included — vdivpd is correctly rounded like scalar divide) and
// is bit-identical to repeaterSegmentDelay(); the equivalence property
// tests assert it. The line-power family is scalar-only: its repeater
// count uses std::round (half away from zero), which has no exact AVX2
// counterpart, and the loop is bandwidth-bound anyway.
#pragma once

#include <span>

#include "interconnect/repeater.h"
#include "kernel/dispatch.h"

namespace nano::interconnect {

/// out[i] = repeaterSegmentDelay(driver, rc, size[i], length[i]).
/// Throws std::invalid_argument if any size or length is non-positive
/// (checked up front, before any output is written).
void segmentDelayBatch(const RepeaterDriver& driver, const WireRc& rc,
                       std::span<const double> size,
                       std::span<const double> length, std::span<double> out);

/// out[i] = repeatedLinePower(driver, rc, design, length[i], ...).total().
void linePowerBatch(const RepeaterDriver& driver, const WireRc& rc,
                    const RepeaterDesign& design,
                    std::span<const double> length, double freq,
                    double activity, std::span<double> out);

/// Family behind segmentDelayBatch ("interconnect/segment_delay"); exposed
/// so tests can interrogate pickedName(). Signature: (unitR, cin, cout,
/// rPerM, cPerM, size, length, out, n).
kernel::KernelFamily<void (*)(double, double, double, double, double,
                              const double*, const double*, double*,
                              std::size_t)>&
segmentDelayFamily();

/// Family behind linePowerBatch ("interconnect/line_power"); the scalar
/// variant calls repeatedLinePower() per element, so the batch is
/// trivially identical to the scalar API.
kernel::KernelFamily<void (*)(const RepeaterDriver&, const WireRc&,
                              const RepeaterDesign&, double, double,
                              const double*, double*, std::size_t)>&
linePowerFamily();

}  // namespace nano::interconnect
