// Global-wire sizing exploration: the delay/power trade of widening and
// spacing top-level wires, evaluated through the repeater-insertion model.
// Section 2.2's point that EDA tools need to work with "different
// primitive components" — here, the wire geometry itself is the knob.
#pragma once

#include <vector>

#include "interconnect/repeater.h"
#include "interconnect/wire.h"

namespace nano::interconnect {

/// One geometry candidate evaluated on a reference link.
struct WireSizingPoint {
  double widthMultiple = 1.0;    ///< width / minimum width
  double spacingMultiple = 1.0;  ///< spacing / minimum spacing
  double delayPerMeter = 0.0;    ///< s/m, optimally repeated
  double energyPerMeterBit = 0.0;///< J/(m*transition), wire + repeaters
  double tracksPerWire = 0.0;    ///< routing pitch / minimum pitch
};

/// Sweep width (and optionally spacing) multiples for a node's top-level
/// wire; each point re-optimizes the repeaters.
std::vector<WireSizingPoint> sweepWireSizing(
    const tech::TechNode& node, const std::vector<double>& widthMultiples,
    const std::vector<double>& spacingMultiples = {1.0});

/// From a sweep, the Pareto frontier in (delay, energy): points not
/// dominated by any other (ties resolved toward fewer tracks).
std::vector<WireSizingPoint> paretoFrontier(std::vector<WireSizingPoint> points);

/// The fastest geometry in a sweep, and the cheapest geometry within
/// `delaySlackFraction` of that fastest delay — the "spend a little delay,
/// save a lot of wire power" pick.
struct WireSizingChoice {
  WireSizingPoint fastest;
  WireSizingPoint efficient;
  double energySavedFraction = 0.0;  ///< efficient vs fastest
  double delayPaidFraction = 0.0;
};
WireSizingChoice chooseWireSizing(const tech::TechNode& node,
                                  double delaySlackFraction = 0.10);

}  // namespace nano::interconnect
