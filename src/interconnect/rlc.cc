#include "interconnect/rlc.h"

#include "interconnect/elmore.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/units.h"

namespace nano::interconnect {

using namespace nano::units;

namespace {
constexpr double kMu0 = 4.0e-7 * 3.14159265358979323846;  // H/m
}

WireL computeWireL(const WireGeometry& g, double returnDistance) {
  if (returnDistance <= 0) {
    throw std::invalid_argument("computeWireL: returnDistance <= 0");
  }
  WireL l;
  // Partial self inductance per length of a rectangular conductor
  // (Ruehli): (mu0/2pi) * (ln(2l/(w+t)) + 1/2) — per unit length the
  // log term uses the geometric mean distance; we use the standard
  // per-length approximation with the return distance as the outer scale.
  const double gmd = 0.2235 * (g.width + g.thickness);  // conductor GMD
  l.selfInductancePerM = (kMu0 / (2.0 * 3.14159265358979323846)) *
                         (std::log(2.0 * returnDistance / gmd) + 0.5);
  // Loop inductance of the signal/return pair at spacing returnDistance:
  // (mu0/pi) * (ln(d/gmd) + 1/4) for two parallel rectangular conductors.
  l.loopInductancePerM =
      (kMu0 / 3.14159265358979323846) *
      (std::log(returnDistance / gmd) + 0.25);
  // Mutual to the adjacent signal wire (pitch away).
  const double pitch = g.width + g.spacing;
  l.mutualToNeighborPerM =
      (kMu0 / (2.0 * 3.14159265358979323846)) *
      std::log(returnDistance / std::max(pitch, gmd));
  l.mutualToNeighborPerM = std::max(l.mutualToNeighborPerM, 0.0);
  return l;
}

RlcReport analyzeRlcLine(const WireRc& rc, const WireL& l, double length,
                         double rdrv, double cload) {
  if (length <= 0) throw std::invalid_argument("analyzeRlcLine: length");
  RlcReport rep;
  const double cPerM = rc.totalCapPerM();
  const double lPerM = l.loopInductancePerM;
  rep.timeOfFlight = length * std::sqrt(lPerM * cPerM);
  rep.rcDelay = distributedLineDelay(rc, length, rdrv, cload);
  rep.characteristicImpedance = std::sqrt(lPerM / cPerM);
  rep.attenuation =
      rc.resistancePerM * length / (2.0 * rep.characteristicImpedance);
  // Inductance matters when the line is not heavily attenuated and the
  // driver is stiff relative to Z0 (Ismail-Friedman criterion, simplified).
  rep.inductanceMatters =
      rep.attenuation < 1.0 && rdrv < 2.0 * rep.characteristicImpedance;
  rep.delayEstimate = std::max(rep.timeOfFlight, rep.rcDelay);
  return rep;
}

RlcReport repeaterSegmentRlc(const tech::TechNode& node) {
  const WireGeometry g = topLevelWire(node);
  const WireRc rc = computeWireRc(g);
  // Return current flows in the power grid one bump pitch away at worst.
  const WireL l = computeWireL(g, node.minBumpPitch);
  const RepeaterDriver driver = RepeaterDriver::fromNode(node);
  const RepeaterDesign d = optimalRepeatersNumeric(driver, rc);
  return analyzeRlcLine(rc, l, d.segmentLength,
                        driver.unitResistance / d.size,
                        driver.unitInputCap * d.size);
}

}  // namespace nano::interconnect
