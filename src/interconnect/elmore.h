// RC-tree representation and Elmore delay engine. Used to validate the
// closed-form repeater formulas, to model repeater-segment delay, and by
// the signaling comparison code.
#pragma once

#include <cstddef>
#include <vector>

#include "interconnect/wire.h"

namespace nano::interconnect {

/// A grounded-capacitor RC tree. Node 0 is the root (driven by an ideal
/// source through `rootResistance`). Every other node hangs off its parent
/// through a resistor.
class RcTree {
 public:
  /// Creates a tree with only the root node (cap `rootCap`).
  explicit RcTree(double rootCap = 0.0);

  /// Adds a node connected to `parent` via `resistance`, loaded with `cap`.
  /// Returns the new node's index.
  std::size_t addNode(std::size_t parent, double resistance, double cap);

  /// Adds extra capacitance at an existing node.
  void addCap(std::size_t node, double cap);

  [[nodiscard]] std::size_t nodeCount() const { return parent_.size(); }
  [[nodiscard]] double totalCap() const;

  /// Elmore delay (first moment of the impulse response) from the ideal
  /// source to `node`, given a source resistance `rsource` in series with
  /// the root, s.
  [[nodiscard]] double elmoreDelay(std::size_t node, double rsource = 0.0) const;

  /// Second moment of the transfer function at `node` (positive
  /// convention): m2 = sum_k R_common(node,k) * C_k * elmore(k), s^2.
  [[nodiscard]] double secondMoment(std::size_t node,
                                    double rsource = 0.0) const;

  /// 50 %-point delay estimate: 0.693 * Elmore (first-order fit), s.
  /// Pessimistic for far nodes of distributed lines.
  [[nodiscard]] double delay50(std::size_t node, double rsource = 0.0) const;

  /// Two-moment "D2M" 50 % delay estimate, ln2 * m1^2 / sqrt(m2): exact
  /// for a single pole, markedly more accurate than 0.693*Elmore on
  /// resistive lines, s.
  [[nodiscard]] double delayD2M(std::size_t node, double rsource = 0.0) const;

 private:
  /// Capacitance in the subtree rooted at each node (computed lazily).
  [[nodiscard]] std::vector<double> downstreamCap() const;

  std::vector<std::size_t> parent_;
  std::vector<double> resistance_;  // edge to parent; [0] unused
  std::vector<double> cap_;
};

/// Build an N-segment distributed line of length `length` with the given
/// per-length parasitics, an optional load cap at the far end. Returns the
/// tree and the index of the far-end node.
struct LineTree {
  RcTree tree;
  std::size_t farEnd = 0;
};
LineTree buildLine(const WireRc& rc, double length, int segments,
                   double loadCap = 0.0);

/// Closed-form 50 % delay of a distributed RC line driven by `rdrv` and
/// loaded by `cload` (Sakurai): 0.377*R*C*L^2-style plus boundary terms.
double distributedLineDelay(const WireRc& rc, double length, double rdrv,
                            double cload);

}  // namespace nano::interconnect
