#include "interconnect/wire_sizing.h"

#include <algorithm>
#include <stdexcept>

namespace nano::interconnect {

namespace {

WireSizingPoint evaluate(const tech::TechNode& node,
                         const RepeaterDriver& driver, double widthMult,
                         double spacingMult) {
  WireGeometry g = topLevelWire(node);
  const double minWidth = g.width;
  const double minSpacing = g.spacing;
  g.width = widthMult * minWidth;
  g.spacing = spacingMult * minSpacing;
  const WireRc rc = computeWireRc(g);
  const RepeaterDesign design = optimalRepeatersNumeric(driver, rc);

  WireSizingPoint pt;
  pt.widthMultiple = widthMult;
  pt.spacingMultiple = spacingMult;
  pt.delayPerMeter = design.delayPerMeter;
  // Switched energy per metre per transition: wire plus repeater caps at
  // the optimal insertion density.
  const double cWire = rc.totalCapPerM();
  const double cRep = design.size *
                      (driver.unitInputCap + driver.unitOutputCap) /
                      design.segmentLength;
  pt.energyPerMeterBit = (cWire + cRep) * node.vdd * node.vdd;
  pt.tracksPerWire = (g.width + g.spacing) / (minWidth + minSpacing);
  return pt;
}

}  // namespace

std::vector<WireSizingPoint> sweepWireSizing(
    const tech::TechNode& node, const std::vector<double>& widthMultiples,
    const std::vector<double>& spacingMultiples) {
  if (widthMultiples.empty() || spacingMultiples.empty()) {
    throw std::invalid_argument("sweepWireSizing: empty sweep");
  }
  const RepeaterDriver driver = RepeaterDriver::fromNode(node);
  std::vector<WireSizingPoint> out;
  out.reserve(widthMultiples.size() * spacingMultiples.size());
  for (double w : widthMultiples) {
    for (double s : spacingMultiples) {
      if (w <= 0 || s <= 0) {
        throw std::invalid_argument("sweepWireSizing: non-positive multiple");
      }
      out.push_back(evaluate(node, driver, w, s));
    }
  }
  return out;
}

std::vector<WireSizingPoint> paretoFrontier(
    std::vector<WireSizingPoint> points) {
  std::vector<WireSizingPoint> frontier;
  for (const auto& p : points) {
    bool dominated = false;
    for (const auto& q : points) {
      const bool betterOrEqual = q.delayPerMeter <= p.delayPerMeter &&
                                 q.energyPerMeterBit <= p.energyPerMeterBit;
      const bool strictlyBetter = q.delayPerMeter < p.delayPerMeter ||
                                  q.energyPerMeterBit < p.energyPerMeterBit;
      if (betterOrEqual && strictlyBetter) {
        dominated = true;
        break;
      }
    }
    if (!dominated) frontier.push_back(p);
  }
  std::sort(frontier.begin(), frontier.end(),
            [](const WireSizingPoint& a, const WireSizingPoint& b) {
              return a.delayPerMeter < b.delayPerMeter;
            });
  return frontier;
}

WireSizingChoice chooseWireSizing(const tech::TechNode& node,
                                  double delaySlackFraction) {
  if (delaySlackFraction < 0) {
    throw std::invalid_argument("chooseWireSizing: negative slack");
  }
  const std::vector<double> widths = {1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0};
  const std::vector<double> spacings = {1.0, 1.5, 2.0, 3.0};
  const auto sweep = sweepWireSizing(node, widths, spacings);

  WireSizingChoice choice;
  choice.fastest = *std::min_element(
      sweep.begin(), sweep.end(),
      [](const WireSizingPoint& a, const WireSizingPoint& b) {
        return a.delayPerMeter < b.delayPerMeter;
      });
  const double budget =
      choice.fastest.delayPerMeter * (1.0 + delaySlackFraction);
  choice.efficient = choice.fastest;
  for (const auto& p : sweep) {
    if (p.delayPerMeter <= budget &&
        p.energyPerMeterBit < choice.efficient.energyPerMeterBit) {
      choice.efficient = p;
    }
  }
  choice.energySavedFraction = 1.0 - choice.efficient.energyPerMeterBit /
                                         choice.fastest.energyPerMeterBit;
  choice.delayPaidFraction = choice.efficient.delayPerMeter /
                                 choice.fastest.delayPerMeter -
                             1.0;
  return choice;
}

}  // namespace nano::interconnect
