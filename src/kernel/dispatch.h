// nano::kernel — SIMD-batched SoA kernel evaluation with runtime-
// specialized dispatch. Like obs and exec, any layer may include the
// dispatch core: it only depends on util/obs.
//
// The design splits a hot inner loop into three pieces:
//  * a *prepared* evaluator that hoists every batch-invariant constant out
//    of the per-element expression (kernel/device_batch.h),
//  * one or more *variants* of the element loop — a scalar reference plus
//    explicit AVX2 specializations where the compiler cannot vectorize
//    (gathers, masked remainders) — registered in a KernelFamily,
//  * a dispatch-time *pick* that selects the widest variant the running
//    CPU supports and the batch shape fits, the cpp-native analogue of
//    GeNN's per-merged-group kernel codegen.
//
// Bit-reproducibility contract: every variant of a family must produce
// bit-identical results to the family's scalar reference (per-lane
// operation order preserved, no FMA contraction, no reduction
// reassociation). Where a kernel intentionally changes the algorithm (the
// secant Ion solve), the tolerance is documented at the definition site
// and covered by the golden-figure invariance suite. Consequently forcing
// NANO_KERNEL_ISA=scalar must never change any result byte.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/obs.h"

namespace nano::kernel {

/// Instruction sets the dispatcher distinguishes, widest last. Scalar is
/// the portable reference; every x86-64 CPU can run it.
enum class Isa { Scalar = 0, Avx2 = 1 };

/// Short stable name ("scalar", "avx2").
const char* isaName(Isa isa);

/// Widest ISA the running CPU supports (cached after the first probe).
Isa detectIsa();

/// ISA the dispatcher targets: detectIsa() clamped by the NANO_KERNEL_ISA
/// environment variable ("scalar" or "avx2", read once on first use).
/// Asking for a wider ISA than the CPU has falls back to the detected one.
Isa activeIsa();

/// Test hook: force the dispatch ISA (clamped to detectIsa()). Returns the
/// ISA actually installed so tests can skip when AVX2 is unavailable.
Isa setActiveIsa(Isa isa);

/// Shape of one batch request; variants declare what shapes they serve.
struct BatchShape {
  std::size_t lanes = 0;      ///< elements in the batch
  bool uniformParams = true;  ///< model constants fixed across the batch
  int colorCount = 0;         ///< smoother colors (0 = not a smoother)
  std::size_t rowWidth = 0;   ///< common CSR/SELL row width (0 = irregular)
};

/// A family of interchangeable kernel variants sharing one signature.
/// Variants are registered cheapest-first; pick() scans from the most
/// recently added (most specialized) variant and takes the first one whose
/// minimum ISA is active and whose predicate accepts the batch shape. The
/// first registration must be a Scalar variant accepting every shape so a
/// pick can never fail.
///
/// Every pick bumps the `kernel/batch/<family>` counter and the winning
/// variant's `kernel/variant/<name>` counter, so `nanod --metrics` shows
/// which specialization served each batch.
template <typename Fn>
class KernelFamily {
 public:
  explicit KernelFamily(std::string familyName)
      : name_(std::move(familyName)),
        batchCounterName_("kernel/batch/" + name_) {}

  KernelFamily(const KernelFamily&) = delete;
  KernelFamily& operator=(const KernelFamily&) = delete;

  void add(std::string variantName, Isa minIsa, bool (*fits)(const BatchShape&),
           Fn fn) {
    Variant v;
    v.counterName = "kernel/variant/" + variantName;
    v.name = std::move(variantName);
    v.minIsa = minIsa;
    v.fits = fits;
    v.fn = fn;
    variants_.push_back(std::move(v));
  }

  /// Select the variant for `shape` under the active ISA and record the
  /// dispatch counters. Never fails once a universal scalar variant is
  /// registered.
  Fn pick(const BatchShape& shape) const { return pickVariant(shape).fn; }

  /// Name of the variant pick() would run (tests and diagnostics).
  const std::string& pickedName(const BatchShape& shape) const {
    return pickVariant(shape).name;
  }

  const std::string& name() const { return name_; }

 private:
  struct Variant {
    std::string name;
    std::string counterName;
    Isa minIsa = Isa::Scalar;
    bool (*fits)(const BatchShape&) = nullptr;
    Fn fn = nullptr;
  };

  const Variant& pickVariant(const BatchShape& shape) const {
    const Isa isa = activeIsa();
    for (std::size_t i = variants_.size(); i-- > 0;) {
      const Variant& v = variants_[i];
      if (v.minIsa > isa) continue;
      if (v.fits != nullptr && !v.fits(shape)) continue;
      NANO_OBS_COUNT(batchCounterName_, 1);
      NANO_OBS_COUNT(v.counterName, 1);
      return v;
    }
    // Unreachable by construction (families register a universal scalar
    // variant first); keep the no-variant failure loud rather than UB.
    throw std::logic_error("KernelFamily '" + name_ + "': no variant fits");
  }

  std::string name_;
  std::string batchCounterName_;
  std::vector<Variant> variants_;
};

/// Shape predicate accepting everything (the scalar-fallback default).
inline bool fitsAnyShape(const BatchShape&) { return true; }

}  // namespace nano::kernel
