// Bracketed Illinois (modified regula falsi) solver for the source-
// degeneration fixed point I = Idsat0(Vgs - I*Rs). Header-only and
// dependency-free so both device::Mosfet::ionSelfConsistent and the
// batched kernel::DeviceKernel::ion call the *same* iteration — identical
// evaluation sequence, hence bit-identical results between the scalar and
// batched paths at any lane count.
//
// Why Illinois instead of the previous Brent solve: the residual
// f(i) = Idsat0(Vgs - i*Rs) - i is smooth, strictly decreasing, and
// bracketed by construction (f(0) = Imax > 0, f(Imax) <= 0), so the
// superlinear false-position variant converges in ~5 evaluations of the
// device model where Brent needed ~11 — the model evaluation is the whole
// cost of the sweep hot path. Documented tolerance: the returned root is
// within `xtol` (callers pass 1e-12 * Imax, i.e. ~1e-12 relative) of the
// exact fixed point, the same interval tolerance the Brent path used, so
// the difference against the historical solve is bounded by ~1e-11
// relative — far inside the 1e-6 golden-figure tolerance. The change is
// covered by the batch-vs-reference property tests and the golden suite.
#pragma once

#include <cmath>

namespace nano::kernel {

struct IonSolveResult {
  double x = 0.0;       ///< located fixed point (best iterate on failure)
  int evaluations = 0;  ///< device-model evaluations consumed
  bool converged = false;
};

/// Solve f(i) = idsat0At(i) - i = 0 on [0, iMax] for a strictly
/// decreasing f with f(0) = iMax > 0. `idsat0At(i)` must return the drive
/// current at gate debias i*Rs; `xtol` is the absolute interval tolerance.
template <typename F>
IonSolveResult solveDegeneratedIon(F&& idsat0At, double iMax, double xtol) {
  IonSolveResult out;
  double a = 0.0, fa = iMax;
  double b = iMax;
  double fb = idsat0At(b) - b;
  out.evaluations = 1;
  if (!std::isfinite(fb)) {
    out.x = b;
    return out;
  }
  if (fb >= 0.0) {
    // Degeneration did not reduce the current (Rs == 0 or negligible):
    // the fixed point is iMax itself.
    out.x = iMax;
    out.converged = true;
    return out;
  }
  // Illinois: false-position steps with the retained endpoint's residual
  // halved whenever the same side is kept twice, which restores
  // superlinear convergence on convex residuals. Deterministic: the
  // iterate sequence depends only on (idsat0At, iMax, xtol).
  constexpr int kMaxIterations = 80;
  int side = 0;  // -1: `a` moved last, +1: `b` moved last
  double x = b;
  for (int it = 0; it < kMaxIterations; ++it) {
    x = (a * fb - b * fa) / (fb - fa);
    if (!(x > a && x < b)) x = 0.5 * (a + b);  // safeguarded bisection step
    const double fx = idsat0At(x) - x;
    ++out.evaluations;
    if (!std::isfinite(fx)) {
      out.x = x;
      return out;
    }
    if (fx == 0.0) {
      out.x = x;
      out.converged = true;
      return out;
    }
    if (fx > 0.0) {
      a = x;
      fa = fx;
      if (side == -1) fb *= 0.5;
      side = -1;
    } else {
      b = x;
      fb = fx;
      if (side == +1) fa *= 0.5;
      side = +1;
    }
    if (b - a <= xtol) {
      out.x = x;
      out.converged = true;
      return out;
    }
  }
  out.x = 0.5 * (a + b);
  return out;
}

}  // namespace nano::kernel
