// Batched SoA evaluation of the device::Mosfet compact model.
//
// DeviceKernel hoists every quantity of the Eq. (2)-(4) model that does
// not depend on (VthNominal, Vgs, Vds) — the temperature Vth shift, the
// subthreshold swing and its EKV n*vt, the electrical Cox, the
// temperature-scaled low-field mobility, and the geometry products — so a
// sweep evaluates each grid point with two libm calls (exp + log1p) per
// Idsat0 instead of re-deriving the constants per element. The per-element
// arithmetic replicates device::Mosfet expression-for-expression, so every
// prepared evaluator is bit-identical to constructing a Mosfet per point
// (asserted by the kernel equivalence property tests); the Ion fixed point
// runs the same kernel::solveDegeneratedIon iteration as
// Mosfet::ionSelfConsistent (documented ~1e-11 relative agreement with the
// historical Brent solve; see kernel/ion_solve.h).
//
// The batch entry points dispatch through KernelFamily registries
// ("device/ion", "device/ioff", "device/idsat0") so `nanod --metrics`
// reports which specialization served each batch. The device families are
// deliberately scalar-only: their cost is libm (exp/log1p/pow) which has
// no bit-identical vector form, so the SIMD wins live in the prepared
// constants and the secant solve, not in lane width.
#pragma once

#include <span>

#include "device/mosfet.h"
#include "kernel/dispatch.h"

namespace nano::kernel {

/// Prepared evaluator for one device flavor (fixed params, temperature and
/// DIBL reference supply) with the threshold voltage, gate and drain bias
/// varying per element. Immutable after construction; safe to share across
/// exec lanes.
class DeviceKernel {
 public:
  /// `base.vthNominal` is ignored; every evaluator takes the per-element
  /// Vth explicitly. Throws like Mosfet on non-positive geometry.
  explicit DeviceKernel(const device::MosfetParams& base);

  /// Node-derived kernel with an explicit DIBL reference supply (the
  /// design-space convention: Vth specified at nominal Vdd).
  static DeviceKernel fromNode(const tech::TechNode& node,
                               double vddReference,
                               device::GateStack stack = device::GateStack::Poly,
                               double temperature = 300.0);

  /// Effective threshold at drain bias `vds` (bit-identical to
  /// Mosfet::vthEffective). Negative `vds` means the reference supply.
  [[nodiscard]] double vthEffective(double vthNominal, double vds) const;

  /// Eq. (3) saturation current, A/m (bit-identical to Mosfet::idsat0).
  [[nodiscard]] double idsat0(double vthNominal, double vgs,
                              double vds = -1.0) const;

  /// Eq. (2) self-consistent on-current, A/m (bit-identical to
  /// Mosfet::ionSelfConsistent — same secant iteration).
  [[nodiscard]] double ion(double vthNominal, double vgs,
                           double vds = -1.0) const;

  /// Eq. (4) off-current, A/m (bit-identical to Mosfet::ioff).
  [[nodiscard]] double ioff(double vthNominal, double vds = -1.0) const;

  // SoA batches: out[i] = f(vthNominal[i], ...). All spans must share one
  // length; lane i writes only out[i], so any partition of a batch across
  // exec workers reproduces the serial result bit-for-bit.
  void ionBatch(std::span<const double> vthNominal,
                std::span<const double> vgs, std::span<const double> vds,
                std::span<double> out) const;
  void ioffBatch(std::span<const double> vthNominal,
                 std::span<const double> vds, std::span<double> out) const;
  void idsat0Batch(std::span<const double> vthNominal,
                   std::span<const double> vgs, std::span<const double> vds,
                   std::span<double> out) const;

  [[nodiscard]] const device::MosfetParams& params() const { return params_; }

 private:
  [[nodiscard]] double mobility(double vthNominal, double vgs) const;
  [[nodiscard]] double smoothedOverdrive(double vgs, double vth) const;

  device::MosfetParams params_;
  // Hoisted constants; names follow the Mosfet member expressions they
  // replace. Each is computed with the exact arithmetic the per-call path
  // uses, and is only ever substituted for that whole subexpression (never
  // re-associated), so hoisting is a bitwise no-op.
  double tempShift_ = 0.0;   ///< vthTempCo * (T - 300)
  double swing_ = 0.0;       ///< subthresholdSwing() at T
  double twoNvt_ = 0.0;      ///< 2 * (swing / ln 10), the EKV 2*n*vt
  double cox_ = 0.0;         ///< coxElectrical()
  double sixTox_ = 0.0;      ///< 6 * toxElectrical()
  double mu0T_ = 0.0;        ///< mu0 * (300/T)^1.5
  double twoVsat_ = 0.0;     ///< 2 * vsat
  double twoLeff_ = 0.0;     ///< 2 * leff
};

/// Families backing the batch entry points (exposed for tests/benchmarks
/// that want to interrogate pickedName()).
KernelFamily<void (*)(const DeviceKernel&, const double*, const double*,
                      const double*, double*, std::size_t)>&
deviceIonFamily();
KernelFamily<void (*)(const DeviceKernel&, const double*, const double*,
                      const double*, double*, std::size_t)>&
deviceIdsat0Family();
KernelFamily<void (*)(const DeviceKernel&, const double*, const double*,
                      double*, std::size_t)>&
deviceIoffFamily();

}  // namespace nano::kernel
