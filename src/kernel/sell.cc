#include "kernel/sell.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace nano::kernel {

namespace {

constexpr std::size_t kS = SellMatrix::kSlice;

void checkIndexWidth(std::size_t n) {
  if (n > static_cast<std::size_t>(std::numeric_limits<std::int32_t>::max())) {
    throw std::invalid_argument("SellMatrix: matrix too large for int32 cols");
  }
}

}  // namespace

SellMatrix SellMatrix::fromCsr(const CsrView& a) {
  checkIndexWidth(a.n);
  SellMatrix s;
  s.n = a.n;
  const std::size_t nSlices = (a.n + kS - 1) / kS;
  s.sliceOff.assign(nSlices + 1, 0);
  s.sliceW.assign(nSlices, 0);
  s.ovPtr.assign(a.n + 1, 0);
  for (std::size_t sl = 0; sl < nSlices; ++sl) {
    const std::size_t r0 = sl * kS, r1 = std::min(a.n, r0 + kS);
    std::size_t w = std::numeric_limits<std::size_t>::max();
    for (std::size_t r = r0; r < r1; ++r) {
      w = std::min(w, a.rowPtr[r + 1] - a.rowPtr[r]);
    }
    if (r1 - r0 < kS) w = 0;  // tail slice: entirely via overflow
    s.sliceW[sl] = static_cast<std::uint32_t>(w);
    s.sliceOff[sl + 1] = s.sliceOff[sl] + w * kS;
    for (std::size_t r = r0; r < r1; ++r) {
      s.ovPtr[r + 1] = (a.rowPtr[r + 1] - a.rowPtr[r]) - w;
    }
  }
  for (std::size_t r = 0; r < a.n; ++r) s.ovPtr[r + 1] += s.ovPtr[r];
  s.vals.assign(s.sliceOff[nSlices], 0.0);
  s.cols.assign(s.sliceOff[nSlices], 0);
  s.ovVal.resize(s.ovPtr[a.n]);
  s.ovCol.resize(s.ovPtr[a.n]);
  for (std::size_t sl = 0; sl < nSlices; ++sl) {
    const std::size_t r0 = sl * kS, r1 = std::min(a.n, r0 + kS);
    const std::size_t w = s.sliceW[sl];
    for (std::size_t r = r0; r < r1; ++r) {
      const std::size_t lane = r - r0;
      for (std::size_t j = 0; j < w; ++j) {
        s.vals[s.sliceOff[sl] + j * kS + lane] = a.val[a.rowPtr[r] + j];
        s.cols[s.sliceOff[sl] + j * kS + lane] =
            static_cast<std::int32_t>(a.col[a.rowPtr[r] + j]);
      }
      std::size_t o = s.ovPtr[r];
      for (std::size_t j = w; j < a.rowPtr[r + 1] - a.rowPtr[r]; ++j, ++o) {
        s.ovVal[o] = a.val[a.rowPtr[r] + j];
        s.ovCol[o] = static_cast<std::int32_t>(a.col[a.rowPtr[r] + j]);
      }
    }
  }
  return s;
}

GsColorPack GsColorPack::fromBucket(const CsrView& a,
                                    const std::vector<std::size_t>& bucket,
                                    const std::vector<double>& invDiag) {
  checkIndexWidth(a.n);
  GsColorPack p;
  p.count = bucket.size();
  p.target = bucket;
  p.invDiag.resize(p.count);
  for (std::size_t k = 0; k < p.count; ++k) p.invDiag[k] = invDiag[bucket[k]];

  // Off-diagonal entries per slot, CSR order with the diagonal removed.
  std::vector<std::size_t> offCount(p.count);
  for (std::size_t k = 0; k < p.count; ++k) {
    const std::size_t u = bucket[k];
    std::size_t cnt = 0;
    for (std::size_t m = a.rowPtr[u]; m < a.rowPtr[u + 1]; ++m) {
      if (a.col[m] != u) ++cnt;
    }
    offCount[k] = cnt;
  }
  const std::size_t nSlices = (p.count + kS - 1) / kS;
  p.sliceOff.assign(nSlices + 1, 0);
  p.sliceW.assign(nSlices, 0);
  p.ovPtr.assign(p.count + 1, 0);
  for (std::size_t sl = 0; sl < nSlices; ++sl) {
    const std::size_t k0 = sl * kS, k1 = std::min(p.count, k0 + kS);
    std::size_t w = std::numeric_limits<std::size_t>::max();
    for (std::size_t k = k0; k < k1; ++k) w = std::min(w, offCount[k]);
    if (k1 - k0 < kS) w = 0;
    p.sliceW[sl] = static_cast<std::uint32_t>(w);
    p.sliceOff[sl + 1] = p.sliceOff[sl] + w * kS;
    for (std::size_t k = k0; k < k1; ++k) p.ovPtr[k + 1] = offCount[k] - w;
  }
  for (std::size_t k = 0; k < p.count; ++k) p.ovPtr[k + 1] += p.ovPtr[k];
  p.vals.assign(p.sliceOff[nSlices], 0.0);
  p.cols.assign(p.sliceOff[nSlices], 0);
  p.ovVal.resize(p.ovPtr[p.count]);
  p.ovCol.resize(p.ovPtr[p.count]);
  for (std::size_t sl = 0; sl < nSlices; ++sl) {
    const std::size_t k0 = sl * kS, k1 = std::min(p.count, k0 + kS);
    const std::size_t w = p.sliceW[sl];
    for (std::size_t k = k0; k < k1; ++k) {
      const std::size_t lane = k - k0;
      const std::size_t u = bucket[k];
      std::size_t j = 0;
      std::size_t o = p.ovPtr[k];
      for (std::size_t m = a.rowPtr[u]; m < a.rowPtr[u + 1]; ++m) {
        if (a.col[m] == u) continue;
        if (j < w) {
          p.vals[p.sliceOff[sl] + j * kS + lane] = a.val[m];
          p.cols[p.sliceOff[sl] + j * kS + lane] =
              static_cast<std::int32_t>(a.col[m]);
        } else {
          p.ovVal[o] = a.val[m];
          p.ovCol[o] = static_cast<std::int32_t>(a.col[m]);
          ++o;
        }
        ++j;
      }
    }
  }
  return p;
}

namespace {

// ---- SpMV variants --------------------------------------------------------

void spmvCsrScalar(const CsrView& a, const SellMatrix*, const double* x,
                   double* y, std::size_t rowBegin, std::size_t rowEnd) {
  for (std::size_t r = rowBegin; r < rowEnd; ++r) {
    double sum = 0.0;
    for (std::size_t k = a.rowPtr[r]; k < a.rowPtr[r + 1]; ++k) {
      sum += a.val[k] * x[a.col[k]];
    }
    y[r] = sum;
  }
}

#if defined(__x86_64__) || defined(__i386__)
// Full-lane gather through the masked form with a zeroed source: the
// plain _mm256_i32gather_pd intrinsic expands _mm256_undefined_pd(),
// which GCC 12 flags as maybe-uninitialized under -Werror. With an
// all-ones mask every lane is written by the gather, so the source never
// reaches the result and the bytes are identical.
__attribute__((target("avx2"))) inline __m256d gatherPd(const double* base,
                                                        __m128i idx) {
  return _mm256_mask_i32gather_pd(
      _mm256_setzero_pd(), base, idx,
      _mm256_castsi256_pd(_mm256_set1_epi64x(-1)), 8);
}

// Scalar evaluation of one row straight from the packed layout: the common
// part in slot order then the overflow entries — the same accumulation
// order as the CSR reference, used for rows whose slice is not fully
// covered by [rowBegin, rowEnd).
inline double sellRowScalar(const SellMatrix& s, const double* x,
                            std::size_t r) {
  const std::size_t sl = r / kS, lane = r % kS;
  const std::size_t w = s.sliceW[sl];
  const double* v = s.vals.data() + s.sliceOff[sl];
  const std::int32_t* c = s.cols.data() + s.sliceOff[sl];
  double sum = 0.0;
  for (std::size_t j = 0; j < w; ++j) {
    sum += v[j * kS + lane] * x[c[j * kS + lane]];
  }
  for (std::size_t k = s.ovPtr[r]; k < s.ovPtr[r + 1]; ++k) {
    sum += s.ovVal[k] * x[s.ovCol[k]];
  }
  return sum;
}

__attribute__((target("avx2"))) void spmvSellAvx2(const CsrView&,
                                                  const SellMatrix* sellPtr,
                                                  const double* x, double* y,
                                                  std::size_t rowBegin,
                                                  std::size_t rowEnd) {
  const SellMatrix& s = *sellPtr;
  std::size_t r = rowBegin;
  for (; r < rowEnd && r % kS != 0; ++r) y[r] = sellRowScalar(s, x, r);
  for (; r + kS <= rowEnd; r += kS) {
    const std::size_t sl = r / kS;
    const std::size_t w = s.sliceW[sl];
    const double* v = s.vals.data() + s.sliceOff[sl];
    const std::int32_t* c = s.cols.data() + s.sliceOff[sl];
    __m256d acc = _mm256_setzero_pd();
    for (std::size_t j = 0; j < w; ++j) {
      const __m256d vv = _mm256_loadu_pd(v + j * kS);
      const __m128i cc =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(c + j * kS));
      const __m256d xv = gatherPd(x, cc);
      acc = _mm256_add_pd(acc, _mm256_mul_pd(vv, xv));
    }
    alignas(32) double sums[kS];
    _mm256_store_pd(sums, acc);
    for (std::size_t lane = 0; lane < kS; ++lane) {
      const std::size_t row = r + lane;
      double sum = sums[lane];
      for (std::size_t k = s.ovPtr[row]; k < s.ovPtr[row + 1]; ++k) {
        sum += s.ovVal[k] * x[s.ovCol[k]];
      }
      y[row] = sum;
    }
  }
  for (; r < rowEnd; ++r) y[r] = sellRowScalar(s, x, r);
}
#endif

bool fitsSell(const BatchShape& shape) {
  return shape.rowWidth == SellMatrix::kSlice;
}

// ---- Gauss-Seidel sweep variants ------------------------------------------

void gsScalar(const GsColorPack& p, const double* b, double* x,
              std::size_t slotBegin, std::size_t slotEnd) {
  for (std::size_t k = slotBegin; k < slotEnd; ++k) {
    const std::size_t sl = k / kS, lane = k % kS;
    const std::size_t w = p.sliceW[sl];
    const double* v = p.vals.data() + p.sliceOff[sl];
    const std::int32_t* c = p.cols.data() + p.sliceOff[sl];
    double s = b[p.target[k]];
    for (std::size_t j = 0; j < w; ++j) {
      s -= v[j * kS + lane] * x[c[j * kS + lane]];
    }
    for (std::size_t m = p.ovPtr[k]; m < p.ovPtr[k + 1]; ++m) {
      s -= p.ovVal[m] * x[p.ovCol[m]];
    }
    x[p.target[k]] = s * p.invDiag[k];
  }
}

#if defined(__x86_64__) || defined(__i386__)
__attribute__((target("avx2"))) void gsSellAvx2(const GsColorPack& p,
                                                const double* b, double* x,
                                                std::size_t slotBegin,
                                                std::size_t slotEnd) {
  std::size_t k = slotBegin;
  if (k % kS != 0) {
    const std::size_t stop = std::min(slotEnd, (k / kS + 1) * kS);
    gsScalar(p, b, x, k, stop);
    k = stop;
  }
  for (; k + kS <= slotEnd; k += kS) {
    const std::size_t sl = k / kS;
    const std::size_t w = p.sliceW[sl];
    const double* v = p.vals.data() + p.sliceOff[sl];
    const std::int32_t* c = p.cols.data() + p.sliceOff[sl];
    __m256d acc = _mm256_set_pd(b[p.target[k + 3]], b[p.target[k + 2]],
                                b[p.target[k + 1]], b[p.target[k]]);
    for (std::size_t j = 0; j < w; ++j) {
      const __m256d vv = _mm256_loadu_pd(v + j * kS);
      const __m128i cc =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(c + j * kS));
      const __m256d xv = gatherPd(x, cc);
      acc = _mm256_sub_pd(acc, _mm256_mul_pd(vv, xv));
    }
    alignas(32) double sums[kS];
    _mm256_store_pd(sums, acc);
    for (std::size_t lane = 0; lane < kS; ++lane) {
      const std::size_t slot = k + lane;
      double s = sums[lane];
      for (std::size_t m = p.ovPtr[slot]; m < p.ovPtr[slot + 1]; ++m) {
        s -= p.ovVal[m] * x[p.ovCol[m]];
      }
      x[p.target[slot]] = s * p.invDiag[slot];
    }
  }
  if (k < slotEnd) gsScalar(p, b, x, k, slotEnd);
}
#endif

bool fitsColored(const BatchShape& shape) { return shape.colorCount > 0; }

// ---- Weighted-Jacobi update variants --------------------------------------

void jacobiScalar(double weight, const double* invDiag, const double* b,
                  const double* t, double* x, std::size_t begin,
                  std::size_t end) {
  for (std::size_t i = begin; i < end; ++i) {
    x[i] += weight * invDiag[i] * (b[i] - t[i]);
  }
}

#if defined(__x86_64__) || defined(__i386__)
__attribute__((target("avx2"))) void jacobiAvx2(double weight,
                                                const double* invDiag,
                                                const double* b,
                                                const double* t, double* x,
                                                std::size_t begin,
                                                std::size_t end) {
  const __m256d vw = _mm256_set1_pd(weight);
  std::size_t i = begin;
  for (; i + 4 <= end; i += 4) {
    const __m256d wd = _mm256_mul_pd(vw, _mm256_loadu_pd(invDiag + i));
    const __m256d res =
        _mm256_sub_pd(_mm256_loadu_pd(b + i), _mm256_loadu_pd(t + i));
    const __m256d xv =
        _mm256_add_pd(_mm256_loadu_pd(x + i), _mm256_mul_pd(wd, res));
    _mm256_storeu_pd(x + i, xv);
  }
  jacobiScalar(weight, invDiag, b, t, x, i, end);
}
#endif

}  // namespace

KernelFamily<SpmvFn>& spmvFamily() {
  static auto* family = [] {
    auto* f = new KernelFamily<SpmvFn>("spmv");
    f->add("spmv_csr_scalar", Isa::Scalar, &fitsAnyShape, &spmvCsrScalar);
#if defined(__x86_64__) || defined(__i386__)
    f->add("spmv_sell_avx2", Isa::Avx2, &fitsSell, &spmvSellAvx2);
#endif
    return f;
  }();
  return *family;
}

KernelFamily<GsFn>& gsFamily() {
  static auto* family = [] {
    auto* f = new KernelFamily<GsFn>("gs");
    f->add("gs_sell_scalar", Isa::Scalar, &fitsAnyShape, &gsScalar);
#if defined(__x86_64__) || defined(__i386__)
    f->add("gs_sell_avx2", Isa::Avx2, &fitsColored, &gsSellAvx2);
#endif
    return f;
  }();
  return *family;
}

KernelFamily<JacobiFn>& jacobiFamily() {
  static auto* family = [] {
    auto* f = new KernelFamily<JacobiFn>("jacobi");
    f->add("jacobi_scalar", Isa::Scalar, &fitsAnyShape, &jacobiScalar);
#if defined(__x86_64__) || defined(__i386__)
    f->add("jacobi_avx2", Isa::Avx2, &fitsAnyShape, &jacobiAvx2);
#endif
    return f;
  }();
  return *family;
}

}  // namespace nano::kernel
