#include "kernel/device_batch.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "kernel/ion_solve.h"
#include "obs/obs.h"

namespace nano::kernel {

DeviceKernel::DeviceKernel(const device::MosfetParams& base) : params_(base) {
  const device::Mosfet probe(base);  // validates geometry and temperature
  tempShift_ = params_.vthTempCo * (params_.temperature - 300.0);
  swing_ = probe.subthresholdSwing();
  twoNvt_ = 2.0 * (swing_ / std::log(10.0));
  cox_ = probe.coxElectrical();
  sixTox_ = 6.0 * probe.toxElectrical();
  mu0T_ = params_.mu0 * std::pow(300.0 / params_.temperature, 1.5);
  twoVsat_ = 2.0 * params_.vsat;
  twoLeff_ = 2.0 * params_.leff;
}

DeviceKernel DeviceKernel::fromNode(const tech::TechNode& node,
                                    double vddReference,
                                    device::GateStack stack,
                                    double temperature) {
  device::MosfetParams p;
  p.toxPhysical = node.toxPhysical;
  p.gateStack = stack;
  p.leff = node.leff;
  p.vthNominal = 0.0;  // unused: evaluators take Vth per element
  p.vddReference = vddReference;
  p.rsOhmM = node.rsSourceOhmM;
  p.dibl = node.dibl;
  p.swing300K = node.subthresholdSwing;
  p.temperature = temperature;
  return DeviceKernel(p);
}

double DeviceKernel::vthEffective(double vthNominal, double vds) const {
  if (vds < 0) vds = params_.vddReference;
  return vthNominal + tempShift_ +
         params_.dibl * (params_.vddReference - vds);
}

double DeviceKernel::mobility(double vthNominal, double vgs) const {
  const double vth = vthEffective(vthNominal, params_.vddReference);
  const double eeff = std::max(vgs + vth, 0.05) / sixTox_;
  const double r = eeff / params_.e0Universal;
  const double degradation =
      params_.nuUniversal == 2.0 ? r * r : std::pow(r, params_.nuUniversal);
  return mu0T_ / (1.0 + degradation);
}

double DeviceKernel::smoothedOverdrive(double vgs, double vth) const {
  const double x = (vgs - vth) / twoNvt_;
  if (x > 30.0) return vgs - vth;  // avoid exp overflow; smoothing negligible
  return twoNvt_ * std::log1p(std::exp(x));
}

double DeviceKernel::idsat0(double vthNominal, double vgs, double vds) const {
  if (vds < 0) vds = params_.vddReference;
  const double vth = vthEffective(vthNominal, vds);
  const double vgt = smoothedOverdrive(vgs, vth);
  const double mu = mobility(vthNominal, vgs);
  const double esatL = twoVsat_ / mu * params_.leff;
  return (mu * cox_ / twoLeff_) * vgt * vgt / (1.0 + vgt / esatL);
}

double DeviceKernel::ion(double vthNominal, double vgs, double vds) const {
  if (!std::isfinite(vgs)) return std::nan("");
  const double iMax = idsat0(vthNominal, vgs, vds);
  if (!std::isfinite(iMax)) return std::nan("");
  if (iMax <= 0) return 0.0;
  const double rs = params_.rsOhmM;
  const IonSolveResult r = solveDegeneratedIon(
      [&](double i) { return idsat0(vthNominal, vgs - i * rs, vds); }, iMax,
      iMax * 1e-12);
  if (!r.converged) NANO_OBS_COUNT("device/ion_solve_nonconverged", 1);
  return r.x;
}

double DeviceKernel::ioff(double vthNominal, double vds) const {
  if (vds < 0) vds = params_.vddReference;
  const double vth = vthEffective(vthNominal, vds);
  return params_.ioffPrefactor * std::pow(10.0, -vth / swing_);
}

namespace {

void ionBatchScalar(const DeviceKernel& k, const double* vthNominal,
                    const double* vgs, const double* vds, double* out,
                    std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = k.ion(vthNominal[i], vgs[i], vds[i]);
  }
}

void idsat0BatchScalar(const DeviceKernel& k, const double* vthNominal,
                       const double* vgs, const double* vds, double* out,
                       std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = k.idsat0(vthNominal[i], vgs[i], vds[i]);
  }
}

void ioffBatchScalar(const DeviceKernel& k, const double* vthNominal,
                     const double* vds, double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = k.ioff(vthNominal[i], vds[i]);
  }
}

}  // namespace

KernelFamily<void (*)(const DeviceKernel&, const double*, const double*,
                      const double*, double*, std::size_t)>&
deviceIonFamily() {
  static auto* family = [] {
    auto* f = new KernelFamily<void (*)(const DeviceKernel&, const double*,
                                        const double*, const double*, double*,
                                        std::size_t)>("device/ion");
    f->add("device_ion_secant_scalar", Isa::Scalar, &fitsAnyShape,
           &ionBatchScalar);
    return f;
  }();
  return *family;
}

KernelFamily<void (*)(const DeviceKernel&, const double*, const double*,
                      const double*, double*, std::size_t)>&
deviceIdsat0Family() {
  static auto* family = [] {
    auto* f = new KernelFamily<void (*)(const DeviceKernel&, const double*,
                                        const double*, const double*, double*,
                                        std::size_t)>("device/idsat0");
    f->add("device_idsat0_prepared_scalar", Isa::Scalar, &fitsAnyShape,
           &idsat0BatchScalar);
    return f;
  }();
  return *family;
}

KernelFamily<void (*)(const DeviceKernel&, const double*, const double*,
                      double*, std::size_t)>&
deviceIoffFamily() {
  static auto* family = [] {
    auto* f = new KernelFamily<void (*)(const DeviceKernel&, const double*,
                                        const double*, double*, std::size_t)>(
        "device/ioff");
    f->add("device_ioff_prepared_scalar", Isa::Scalar, &fitsAnyShape,
           &ioffBatchScalar);
    return f;
  }();
  return *family;
}

void DeviceKernel::ionBatch(std::span<const double> vthNominal,
                            std::span<const double> vgs,
                            std::span<const double> vds,
                            std::span<double> out) const {
  const std::size_t n = out.size();
  assert(vthNominal.size() == n && vgs.size() == n && vds.size() == n);
  const BatchShape shape{n, true, 0, 0};
  deviceIonFamily().pick(shape)(*this, vthNominal.data(), vgs.data(),
                                vds.data(), out.data(), n);
}

void DeviceKernel::idsat0Batch(std::span<const double> vthNominal,
                               std::span<const double> vgs,
                               std::span<const double> vds,
                               std::span<double> out) const {
  const std::size_t n = out.size();
  assert(vthNominal.size() == n && vgs.size() == n && vds.size() == n);
  const BatchShape shape{n, true, 0, 0};
  deviceIdsat0Family().pick(shape)(*this, vthNominal.data(), vgs.data(),
                                   vds.data(), out.data(), n);
}

void DeviceKernel::ioffBatch(std::span<const double> vthNominal,
                             std::span<const double> vds,
                             std::span<double> out) const {
  const std::size_t n = out.size();
  assert(vthNominal.size() == n && vds.size() == n);
  const BatchShape shape{n, true, 0, 0};
  deviceIoffFamily().pick(shape)(*this, vthNominal.data(), vds.data(),
                                 out.data(), n);
}

}  // namespace nano::kernel
