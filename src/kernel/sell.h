// Sliced-ELL (SELL-4) repacking of CSR sparse operators, plus the kernel
// families for the power-grid hot loops: SpMV, the red-black/four-color
// Gauss-Seidel sweep, and the weighted-Jacobi update.
//
// Layout: rows are grouped into slices of 4 consecutive rows. Each slice
// stores the first `w` entries of every row slot-major (4 doubles per
// column-slot contiguous, exactly one AVX2 vector), where `w` is the
// shortest row in the slice; the remaining entries of longer rows go to a
// per-row overflow CSR evaluated scalar. A slice shorter than 4 rows keeps
// w = 0 and lives entirely in the overflow part. Column indices are int32
// so one 128-bit load feeds a vgatherdpd.
//
// Bit-reproducibility: the packed order preserves the CSR within-row entry
// order, every variant accumulates with separate mul and add/sub in that
// order (no FMA, no reassociation), and x-gathers are exact loads — so the
// AVX2 variants are bit-identical to the scalar CSR reference at any
// parallel blocking (each row's sum is computed whole by one lane).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "kernel/dispatch.h"

namespace nano::kernel {

/// Borrowed view of a finalized CSR matrix (row-sorted, duplicate-free).
struct CsrView {
  std::size_t n = 0;
  const std::size_t* rowPtr = nullptr;
  const std::size_t* col = nullptr;
  const double* val = nullptr;
};

/// Sliced-ELL repack of a CSR matrix (see file comment for the layout).
struct SellMatrix {
  static constexpr std::size_t kSlice = 4;

  std::size_t n = 0;
  std::vector<std::size_t> sliceOff;   ///< per-slice start into vals/cols
  std::vector<std::uint32_t> sliceW;   ///< common width per slice
  std::vector<double> vals;            ///< [sliceOff[s] + j*4 + lane]
  std::vector<std::int32_t> cols;
  std::vector<std::size_t> ovPtr;      ///< per-row overflow CSR
  std::vector<std::int32_t> ovCol;
  std::vector<double> ovVal;

  /// Repack a finalized CSR. Throws std::invalid_argument when the matrix
  /// is too large for int32 column indices.
  static SellMatrix fromCsr(const CsrView& a);
};

/// One smoother color bucket packed for vector sweeps: the off-diagonal
/// entries of each bucket row (diagonal removed, CSR order otherwise
/// preserved) in SELL-4 layout over bucket *slots*, plus the per-slot
/// target row and inverse diagonal.
struct GsColorPack {
  std::size_t count = 0;               ///< rows in the bucket
  std::vector<std::size_t> target;     ///< unknown index per slot
  std::vector<double> invDiag;         ///< 1/diag per slot
  std::vector<std::size_t> sliceOff;
  std::vector<std::uint32_t> sliceW;
  std::vector<double> vals;
  std::vector<std::int32_t> cols;
  std::vector<std::size_t> ovPtr;      ///< per-slot overflow
  std::vector<std::int32_t> ovCol;
  std::vector<double> ovVal;

  static GsColorPack fromBucket(const CsrView& a,
                                const std::vector<std::size_t>& bucket,
                                const std::vector<double>& invDiag);
};

/// y[r] = sum_k val[k]*x[col[k]] for rows [rowBegin, rowEnd). `sell` may be
/// null (scalar CSR variants ignore it); AVX2 variants require it and only
/// fit shapes with rowWidth == SellMatrix::kSlice.
using SpmvFn = void (*)(const CsrView&, const SellMatrix*, const double* x,
                        double* y, std::size_t rowBegin, std::size_t rowEnd);
KernelFamily<SpmvFn>& spmvFamily();

/// Gauss-Seidel update of bucket slots [slotBegin, slotEnd):
/// x[target[k]] = (b[target[k]] - sum off-diag) * invDiag[k].
using GsFn = void (*)(const GsColorPack&, const double* b, double* x,
                      std::size_t slotBegin, std::size_t slotEnd);
KernelFamily<GsFn>& gsFamily();

/// x[i] += weight * invDiag[i] * (b[i] - t[i]) for i in [begin, end).
using JacobiFn = void (*)(double weight, const double* invDiag,
                          const double* b, const double* t, double* x,
                          std::size_t begin, std::size_t end);
KernelFamily<JacobiFn>& jacobiFamily();

}  // namespace nano::kernel
