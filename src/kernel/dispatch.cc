#include "kernel/dispatch.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace nano::kernel {

const char* isaName(Isa isa) {
  switch (isa) {
    case Isa::Scalar: return "scalar";
    case Isa::Avx2: return "avx2";
  }
  return "unknown";
}

Isa detectIsa() {
#if defined(__x86_64__) || defined(__i386__)
  static const Isa detected =
      __builtin_cpu_supports("avx2") ? Isa::Avx2 : Isa::Scalar;
  return detected;
#else
  return Isa::Scalar;
#endif
}

namespace {

Isa clampToDetected(Isa isa) {
  return isa > detectIsa() ? detectIsa() : isa;
}

Isa initialIsa() {
  const char* env = std::getenv("NANO_KERNEL_ISA");
  if (env != nullptr) {
    if (std::strcmp(env, "scalar") == 0) return Isa::Scalar;
    if (std::strcmp(env, "avx2") == 0) return clampToDetected(Isa::Avx2);
    // Unknown value: ignore and auto-detect, like NANO_EXEC_THREADS clamps.
  }
  return detectIsa();
}

std::atomic<Isa>& activeIsaSlot() {
  static std::atomic<Isa> slot{initialIsa()};
  return slot;
}

}  // namespace

Isa activeIsa() { return activeIsaSlot().load(std::memory_order_relaxed); }

Isa setActiveIsa(Isa isa) {
  const Isa installed = clampToDetected(isa);
  activeIsaSlot().store(installed, std::memory_order_relaxed);
  NANO_OBS_GAUGE("kernel/isa_avx2", installed >= Isa::Avx2 ? 1.0 : 0.0);
  return installed;
}

}  // namespace nano::kernel
