#include "util/table.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace nano::util {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("TextTable: empty header");
}

void TextTable::addRow(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("TextTable: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

void TextTable::addRule() { rows_.emplace_back(); }

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto printRule = [&] {
    os << '+';
    for (std::size_t w : widths) {
      for (std::size_t i = 0; i < w + 2; ++i) os << '-';
      os << '+';
    }
    os << '\n';
  };
  auto printCells = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << cells[c];
      for (std::size_t i = cells[c].size(); i < widths[c] + 1; ++i) os << ' ';
      os << '|';
    }
    os << '\n';
  };
  printRule();
  printCells(header_);
  printRule();
  for (const auto& row : rows_) {
    if (row.empty()) {
      printRule();
    } else {
      printCells(row);
    }
  }
  printRule();
}

std::string fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string fmtSci(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*e", precision - 1, value);
  return buf;
}

std::string fmtEng(double value, const std::string& unit, int precision) {
  struct Prefix {
    double scale;
    const char* symbol;
  };
  static constexpr std::array<Prefix, 10> kPrefixes{{{1e-15, "f"},
                                                     {1e-12, "p"},
                                                     {1e-9, "n"},
                                                     {1e-6, "u"},
                                                     {1e-3, "m"},
                                                     {1.0, ""},
                                                     {1e3, "k"},
                                                     {1e6, "M"},
                                                     {1e9, "G"},
                                                     {1e12, "T"}}};
  if (value == 0.0) return "0 " + unit;
  const double mag = std::abs(value);
  const Prefix* best = &kPrefixes.front();
  for (const auto& p : kPrefixes) {
    if (mag >= p.scale) best = &p;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g %s%s", precision, value / best->scale,
                best->symbol, unit.c_str());
  return buf;
}

}  // namespace nano::util
