// Plain-text table formatter used by the benchmark harnesses to print
// paper-style tables (paper value next to our reproduced value).
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace nano::util {

/// Column-oriented ASCII table. Cells are strings; helpers format numbers
/// with a chosen precision. Example:
///   TextTable t({"node", "Vth (V)", "Ioff (nA/um)"});
///   t.addRow({"180", fmt(0.30, 2), fmt(3.0, 1)});
///   t.print(std::cout);
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void addRow(std::vector<std::string> cells);
  /// Inserts a horizontal rule before the next added row.
  void addRule();
  void print(std::ostream& os) const;
  [[nodiscard]] std::size_t rowCount() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty vector == rule
};

/// Fixed-precision formatting (like printf "%.*f").
std::string fmt(double value, int precision = 3);

/// Scientific formatting with `precision` significant digits.
std::string fmtSci(double value, int precision = 3);

/// Engineering-style: picks an SI prefix among f,p,n,u,m,(none),k,M,G,T.
std::string fmtEng(double value, const std::string& unit, int precision = 3);

}  // namespace nano::util
