#include "util/arena.h"

#include <algorithm>
#include <stdexcept>

namespace nano::util {

namespace {
constexpr std::size_t kMinBlockBytes = 4096;
constexpr std::size_t kMaxBlockBytes = std::size_t{64} << 20;  // 64 MiB
}  // namespace

Arena::Arena(std::size_t firstBlockBytes)
    : nextBlockBytes_(std::max(firstBlockBytes, kMinBlockBytes)) {}

void* Arena::allocate(std::size_t bytes, std::size_t alignment) {
  if (alignment == 0 || (alignment & (alignment - 1)) != 0) {
    throw std::invalid_argument("Arena::allocate: alignment not a power of 2");
  }
  if (bytes == 0) bytes = 1;  // distinct non-null result, keeps the math simple
  // Walk forward from the cursor block; most calls fit immediately.
  for (;;) {
    if (cursor_ < blocks_.size()) {
      Block& b = blocks_[cursor_];
      const std::size_t aligned =
          (b.used + alignment - 1) & ~(alignment - 1);
      if (aligned + bytes <= b.capacity) {
        b.used = aligned + bytes;
        bytesUsed_ += bytes;
        return b.data.get() + aligned;
      }
      // Block full for this request: move on (its tail stays unused until
      // the next reset; fine for the large, few-allocation pattern here).
      ++cursor_;
      continue;
    }
    ensure(bytes + alignment);
  }
}

void Arena::ensure(std::size_t bytes) {
  std::size_t cap = std::max(nextBlockBytes_, bytes);
  Block b;
  b.data = std::make_unique<std::byte[]>(cap);
  b.capacity = cap;
  blocks_.push_back(std::move(b));
  bytesReserved_ += cap;
  ++growthCount_;
  nextBlockBytes_ = std::min(cap * 2, kMaxBlockBytes);
  cursor_ = blocks_.size() - 1;
}

void Arena::reset() {
  for (Block& b : blocks_) b.used = 0;
  cursor_ = 0;
  bytesUsed_ = 0;
}

}  // namespace nano::util
