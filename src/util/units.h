// SI unit helpers and physical constants.
//
// Convention used throughout nanodesign: every quantity is stored in plain
// SI units (volts, amperes, metres, seconds, watts, farads, ohms, kelvin).
// Per-width currents are in A/m, which conveniently equals uA/um, the unit
// the paper reports (1 uA/um == 1e-6 A / 1e-6 m == 1 A/m).
//
// The constants below make literals self-describing at the point of use:
//   double tox = 15.0 * units::angstrom;
//   double ion = 750.0 * units::uA_per_um;
#pragma once

namespace nano::units {

// Lengths.
inline constexpr double m = 1.0;
inline constexpr double cm = 1e-2;
inline constexpr double mm = 1e-3;
inline constexpr double um = 1e-6;
inline constexpr double nm = 1e-9;
inline constexpr double angstrom = 1e-10;

// Areas.
inline constexpr double m2 = 1.0;
inline constexpr double cm2 = 1e-4;
inline constexpr double mm2 = 1e-6;
inline constexpr double um2 = 1e-12;

// Electrical.
inline constexpr double V = 1.0;
inline constexpr double mV = 1e-3;
inline constexpr double A = 1.0;
inline constexpr double mA = 1e-3;
inline constexpr double uA = 1e-6;
inline constexpr double nA = 1e-9;
inline constexpr double pA = 1e-12;
inline constexpr double ohm = 1.0;
inline constexpr double kohm = 1e3;
inline constexpr double F = 1.0;
inline constexpr double pF = 1e-12;
inline constexpr double fF = 1e-15;
inline constexpr double H = 1.0;
inline constexpr double nH = 1e-9;
inline constexpr double pH = 1e-12;

// Per-width / per-length quantities.
inline constexpr double uA_per_um = 1.0;    // == A/m
inline constexpr double nA_per_um = 1e-3;   // == mA/m
inline constexpr double ohm_um = 1e-6;      // ohm * um (width-normalized R)
inline constexpr double fF_per_um = 1e-9;   // F/m
inline constexpr double ohm_per_um = 1e6;   // ohm/m
inline constexpr double uF_per_cm2 = 1e-2;  // F/m^2
inline constexpr double W_per_cm2 = 1e4;    // W/m^2

// Time / frequency.
inline constexpr double s = 1.0;
inline constexpr double ms = 1e-3;
inline constexpr double us = 1e-6;
inline constexpr double ns = 1e-9;
inline constexpr double ps = 1e-12;
inline constexpr double Hz = 1.0;
inline constexpr double MHz = 1e6;
inline constexpr double GHz = 1e9;

// Power.
inline constexpr double W = 1.0;
inline constexpr double mW = 1e-3;
inline constexpr double uW = 1e-6;
inline constexpr double kW = 1e3;

// Physical constants.
inline constexpr double kBoltzmann = 1.380649e-23;    // J/K
inline constexpr double qElectron = 1.602176634e-19;  // C
inline constexpr double eps0 = 8.8541878128e-12;      // F/m
inline constexpr double epsSiO2 = 3.9 * eps0;         // F/m
inline constexpr double epsSi = 11.7 * eps0;          // F/m

// Temperatures.
inline constexpr double kelvin = 1.0;
inline constexpr double zeroCelsiusInKelvin = 273.15;

/// Convert a Celsius temperature to kelvin.
constexpr double fromCelsius(double celsius) { return celsius + zeroCelsiusInKelvin; }

/// Convert a kelvin temperature to Celsius.
constexpr double toCelsius(double tKelvin) { return tKelvin - zeroCelsiusInKelvin; }

/// Thermal voltage kT/q at temperature `tKelvin` (about 25.85 mV at 300 K).
constexpr double thermalVoltage(double tKelvin) {
  return kBoltzmann * tKelvin / qElectron;
}

}  // namespace nano::units
