#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace nano::util {

Summary summarize(const std::vector<double>& xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  double sum = 0.0;
  s.min = xs.front();
  s.max = xs.front();
  for (double x : xs) {
    sum += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = sum / static_cast<double>(xs.size());
  if (xs.size() > 1) {
    double ss = 0.0;
    for (double x : xs) ss += (x - s.mean) * (x - s.mean);
    s.stddev = std::sqrt(ss / static_cast<double>(xs.size() - 1));
  }
  return s;
}

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) throw std::invalid_argument("percentile: empty sample");
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile: p out of range");
  std::sort(xs.begin(), xs.end());
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + frac * (xs[hi] - xs[lo]);
}

Histogram::Histogram(double lo, double hi, int bins) : lo_(lo), hi_(hi) {
  if (bins < 1 || hi <= lo) throw std::invalid_argument("Histogram: bad range");
  counts_.assign(static_cast<std::size_t>(bins), 0);
}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto bin = static_cast<long>(t * static_cast<double>(counts_.size()));
  bin = std::clamp<long>(bin, 0, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

void Histogram::addAll(const std::vector<double>& xs) {
  for (double x : xs) add(x);
}

std::size_t Histogram::count(int bin) const {
  return counts_.at(static_cast<std::size_t>(bin));
}

double Histogram::fraction(int bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(bin)) / static_cast<double>(total_);
}

double Histogram::binLo(int bin) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
                   static_cast<double>(counts_.size());
}

double Histogram::binHi(int bin) const { return binLo(bin + 1); }

double Histogram::cumulativeBelow(double x) const {
  if (total_ == 0) return 0.0;
  if (x <= lo_) return 0.0;
  if (x >= hi_) return 1.0;
  double below = 0.0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const double bl = binLo(static_cast<int>(b));
    const double bh = binHi(static_cast<int>(b));
    if (x >= bh) {
      below += static_cast<double>(counts_[b]);
    } else if (x > bl) {
      below += static_cast<double>(counts_[b]) * (x - bl) / (bh - bl);
    }
  }
  return below / static_cast<double>(total_);
}

}  // namespace nano::util
