// Bump-pointer arena allocator for the flat-array (SoA) storage layer.
// One Arena owns a chain of geometrically grown blocks; allocation is a
// pointer bump, and reset() rewinds to the start of the chain WITHOUT
// returning memory to the system, so a steady-state consumer (rebuild a
// netlist mirror, rerun an analysis) that stays within the high-water
// mark performs zero heap allocations. growthCount() counts the malloc
// events over the arena's lifetime — the counter the scale smoke test
// asserts stops moving once a workload reaches steady state.
//
// Only trivially copyable/destructible element types are supported: the
// arena never runs destructors (reset and destruction just drop the
// memory), which is exactly right for the index/double arrays it backs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace nano::util {

class Arena {
 public:
  /// `firstBlockBytes`: capacity of the first block (rounded up to the
  /// minimum block size); later blocks double until `maxBlockBytes`.
  explicit Arena(std::size_t firstBlockBytes = 1 << 16);

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Raw aligned allocation. Alignment must be a power of two.
  void* allocate(std::size_t bytes, std::size_t alignment);

  /// Typed array allocation, uninitialized.
  template <typename T>
  T* allocateArray(std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T> &&
                      std::is_trivially_destructible_v<T>,
                  "Arena holds trivial types only (no destructors run)");
    return static_cast<T*>(allocate(count * sizeof(T), alignof(T)));
  }

  /// Typed array allocation, zero-initialized.
  template <typename T>
  T* allocateZeroedArray(std::size_t count);

  /// Rewind to empty, keeping every block for reuse. Allocations after a
  /// reset that fit the existing blocks cost no heap traffic.
  void reset();

  /// Number of fresh-block heap allocations over the arena's lifetime.
  /// Flat between two points in time == zero heap allocations between
  /// them.
  [[nodiscard]] std::int64_t growthCount() const { return growthCount_; }

  /// Bytes handed out since construction / the last reset().
  [[nodiscard]] std::size_t bytesUsed() const { return bytesUsed_; }

  /// Total block capacity owned (the high-water footprint).
  [[nodiscard]] std::size_t bytesReserved() const { return bytesReserved_; }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t capacity = 0;
    std::size_t used = 0;
  };

  /// Ensure blocks_[cursor_] can take `bytes` more (aligned worst case).
  void ensure(std::size_t bytes);

  std::vector<Block> blocks_;
  std::size_t cursor_ = 0;  ///< block currently being bumped
  std::size_t nextBlockBytes_;
  std::size_t bytesUsed_ = 0;
  std::size_t bytesReserved_ = 0;
  std::int64_t growthCount_ = 0;
};

template <typename T>
T* Arena::allocateZeroedArray(std::size_t count) {
  T* p = allocateArray<T>(count);
  for (std::size_t i = 0; i < count; ++i) p[i] = T{};
  return p;
}

}  // namespace nano::util
