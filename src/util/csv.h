// Minimal CSV writer so benches can dump figure series for external
// plotting in addition to the ASCII tables they print.
#pragma once

#include <cstdio>
#include <fstream>
#include <initializer_list>
#include <stdexcept>
#include <string>
#include <vector>

namespace nano::util {

/// Round-trip-safe compact decimal form of a double. %.9g keeps 9
/// significant digits at any magnitude, so nA/uA-scale values (Ioff,
/// per-gate leakage) survive the trip through a CSV — unlike
/// std::to_string's fixed 6 decimals, which truncates them to 0.
inline std::string formatCsvDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// RFC-4180 cell encoding: cells containing a comma, double quote, CR or
/// LF are wrapped in double quotes with embedded quotes doubled. Plain
/// cells pass through unchanged, so numeric output stays byte-identical.
inline std::string escapeCsvCell(const std::string& cell) {
  if (cell.find_first_of(",\"\r\n") == std::string::npos) return cell;
  std::string out;
  out.reserve(cell.size() + 2);
  out.push_back('"');
  for (char c : cell) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

/// Streams rows of doubles/strings to a CSV file. The header row fixes the
/// column count; mismatched rows throw. String cells are quoted/escaped
/// per RFC 4180 whenever they contain a delimiter, quote, or newline.
class CsvWriter {
 public:
  CsvWriter(const std::string& path, std::vector<std::string> header)
      : out_(path), columns_(header.size()) {
    if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
    writeCells(header);
  }

  void row(const std::vector<double>& values) {
    if (values.size() != columns_) throw std::invalid_argument("CsvWriter: row width");
    std::vector<std::string> cells;
    cells.reserve(values.size());
    for (double v : values) cells.push_back(formatCsvDouble(v));
    writeCells(cells);
  }

  void row(const std::vector<std::string>& cells) {
    if (cells.size() != columns_) throw std::invalid_argument("CsvWriter: row width");
    writeCells(cells);
  }

 private:
  void writeCells(const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) out_ << ',';
      out_ << escapeCsvCell(cells[i]);
    }
    out_ << '\n';
  }

  std::ofstream out_;
  std::size_t columns_;
};

}  // namespace nano::util
