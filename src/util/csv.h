// Minimal CSV writer so benches can dump figure series for external
// plotting, plus the matching reader the golden-figure regression tests
// use to load the committed series back.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <initializer_list>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace nano::util {

/// Round-trip-safe compact decimal form of a double. %.9g keeps 9
/// significant digits at any magnitude, so nA/uA-scale values (Ioff,
/// per-gate leakage) survive the trip through a CSV — unlike
/// std::to_string's fixed 6 decimals, which truncates them to 0.
inline std::string formatCsvDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// RFC-4180 cell encoding: cells containing a comma, double quote, CR or
/// LF are wrapped in double quotes with embedded quotes doubled. Plain
/// cells pass through unchanged, so numeric output stays byte-identical.
inline std::string escapeCsvCell(const std::string& cell) {
  if (cell.find_first_of(",\"\r\n") == std::string::npos) return cell;
  std::string out;
  out.reserve(cell.size() + 2);
  out.push_back('"');
  for (char c : cell) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

/// Streams rows of doubles/strings to a CSV file. The header row fixes the
/// column count; mismatched rows throw. String cells are quoted/escaped
/// per RFC 4180 whenever they contain a delimiter, quote, or newline.
class CsvWriter {
 public:
  CsvWriter(const std::string& path, std::vector<std::string> header)
      : out_(path), columns_(header.size()) {
    if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
    writeCells(header);
  }

  void row(const std::vector<double>& values) {
    if (values.size() != columns_) throw std::invalid_argument("CsvWriter: row width");
    std::vector<std::string> cells;
    cells.reserve(values.size());
    for (double v : values) cells.push_back(formatCsvDouble(v));
    writeCells(cells);
  }

  void row(const std::vector<std::string>& cells) {
    if (cells.size() != columns_) throw std::invalid_argument("CsvWriter: row width");
    writeCells(cells);
  }

 private:
  void writeCells(const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) out_ << ',';
      out_ << escapeCsvCell(cells[i]);
    }
    out_ << '\n';
  }

  std::ofstream out_;
  std::size_t columns_;
};

/// A parsed CSV file: the header row plus every data row as unescaped
/// string cells. Produced by parseCsvText / readCsvFile.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of `name` in the header, or -1 when absent.
  int columnIndex(const std::string& name) const {
    for (std::size_t i = 0; i < header.size(); ++i) {
      if (header[i] == name) return static_cast<int>(i);
    }
    return -1;
  }

  /// Cell (row, col) parsed as a double; throws on out-of-range indices
  /// or non-numeric text so golden comparisons fail loudly.
  double number(std::size_t row, std::size_t col) const {
    if (row >= rows.size() || col >= rows[row].size()) {
      throw std::out_of_range("CsvTable::number: cell out of range");
    }
    const std::string& cell = rows[row][col];
    char* end = nullptr;
    const double v = std::strtod(cell.c_str(), &end);
    if (end == cell.c_str() || *end != '\0') {
      throw std::invalid_argument("CsvTable::number: not numeric: " + cell);
    }
    return v;
  }
};

/// RFC-4180 parse of `text` (quoted cells, doubled quotes, embedded
/// newlines, optional CRLF line endings and missing final newline). The
/// first record becomes the header. Every data row must match the header
/// width; ragged input throws.
inline CsvTable parseCsvText(const std::string& text) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> record;
  std::string cell;
  bool quoted = false;
  bool cellStarted = false;
  auto endCell = [&] {
    record.push_back(std::move(cell));
    cell.clear();
    cellStarted = false;
  };
  auto endRecord = [&] {
    endCell();
    records.push_back(std::move(record));
    record.clear();
  };
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cell.push_back('"');
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cell.push_back(c);
      }
    } else if (c == '"' && cell.empty() && !cellStarted) {
      quoted = true;
      cellStarted = true;
    } else if (c == ',') {
      endCell();
    } else if (c == '\n') {
      endRecord();
    } else if (c == '\r') {
      // CRLF (consume both) or a bare/final CR: either way the record ends
      // here, so a CRLF checkout whose last line lost its LF still parses.
      // Unquoted cells can never legitimately contain CR (the writer
      // quotes them), so treating CR as a terminator loses nothing.
      endRecord();
      if (i + 1 < text.size() && text[i + 1] == '\n') ++i;
    } else {
      cell.push_back(c);
      cellStarted = true;
    }
  }
  if (quoted) throw std::invalid_argument("parseCsvText: unterminated quote");
  if (cellStarted || !cell.empty() || !record.empty()) endRecord();
  CsvTable table;
  if (records.empty()) return table;
  table.header = std::move(records.front());
  for (std::size_t r = 1; r < records.size(); ++r) {
    if (records[r].size() != table.header.size()) {
      throw std::invalid_argument("parseCsvText: ragged row " +
                                  std::to_string(r));
    }
    table.rows.push_back(std::move(records[r]));
  }
  return table;
}

/// Load and parse a CSV file; throws when the file cannot be opened.
inline CsvTable readCsvFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("readCsvFile: cannot open " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return parseCsvText(os.str());
}

}  // namespace nano::util
