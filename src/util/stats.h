// Descriptive statistics and histogramming, used for path-slack
// distributions, Monte-Carlo sweeps, and workload traces.
#pragma once

#include <cstddef>
#include <vector>

namespace nano::util {

/// Summary statistics of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1)
  double min = 0.0;
  double max = 0.0;
};

/// Compute summary statistics; returns a zeroed Summary for empty input.
Summary summarize(const std::vector<double>& xs);

/// p-th percentile (0 <= p <= 100) with linear interpolation between order
/// statistics. Throws on empty input.
double percentile(std::vector<double> xs, double p);

/// Fixed-width histogram over [lo, hi] with `bins` buckets. Samples outside
/// the range are clamped into the end buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, int bins);

  void add(double x);
  void addAll(const std::vector<double>& xs);

  [[nodiscard]] int bins() const { return static_cast<int>(counts_.size()); }
  [[nodiscard]] std::size_t count(int bin) const;
  [[nodiscard]] std::size_t total() const { return total_; }
  /// Fraction of all samples in [binLo(bin), binHi(bin)).
  [[nodiscard]] double fraction(int bin) const;
  [[nodiscard]] double binLo(int bin) const;
  [[nodiscard]] double binHi(int bin) const;
  /// Fraction of samples with value < x (linear within the containing bin).
  [[nodiscard]] double cumulativeBelow(double x) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace nano::util
