#include "util/numeric.h"

#include <algorithm>
#include <cmath>

namespace nano::util {

namespace {
bool sameSign(double a, double b) { return (a > 0) == (b > 0); }
}  // namespace

SolveResult bisect(const std::function<double(double)>& f, double lo, double hi,
                   double xtol, int maxIter) {
  double flo = f(lo);
  double fhi = f(hi);
  if (flo == 0.0) return {lo, 0.0, 0, true};
  if (fhi == 0.0) return {hi, 0.0, 0, true};
  if (sameSign(flo, fhi)) {
    throw std::invalid_argument("bisect: interval does not bracket a root");
  }
  SolveResult r;
  for (int i = 0; i < maxIter; ++i) {
    const double mid = 0.5 * (lo + hi);
    const double fmid = f(mid);
    r.iterations = i + 1;
    if (fmid == 0.0 || (hi - lo) < xtol) {
      r.x = mid;
      r.fx = fmid;
      r.converged = true;
      return r;
    }
    if (sameSign(flo, fmid)) {
      lo = mid;
      flo = fmid;
    } else {
      hi = mid;
    }
  }
  r.x = 0.5 * (lo + hi);
  r.fx = f(r.x);
  r.converged = (hi - lo) < xtol;
  return r;
}

SolveResult brent(const std::function<double(double)>& f, double lo, double hi,
                  double xtol, int maxIter) {
  double a = lo, b = hi;
  double fa = f(a), fb = f(b);
  if (fa == 0.0) return {a, 0.0, 0, true};
  if (fb == 0.0) return {b, 0.0, 0, true};
  if (sameSign(fa, fb)) {
    throw std::invalid_argument("brent: interval does not bracket a root");
  }
  if (std::abs(fa) < std::abs(fb)) {
    std::swap(a, b);
    std::swap(fa, fb);
  }
  double c = a, fc = fa;
  double d = b - a;  // last step when bisection used
  bool mflag = true;
  SolveResult r;
  for (int i = 0; i < maxIter; ++i) {
    r.iterations = i + 1;
    if (fb == 0.0 || std::abs(b - a) < xtol) {
      r.x = b;
      r.fx = fb;
      r.converged = true;
      return r;
    }
    double s;
    if (fa != fc && fb != fc) {
      // Inverse quadratic interpolation.
      s = a * fb * fc / ((fa - fb) * (fa - fc)) +
          b * fa * fc / ((fb - fa) * (fb - fc)) +
          c * fa * fb / ((fc - fa) * (fc - fb));
    } else {
      // Secant.
      s = b - fb * (b - a) / (fb - fa);
    }
    const double mid = 0.5 * (a + b);
    const bool between = (s > std::min(mid, b)) && (s < std::max(mid, b));
    const bool smallStep = mflag ? std::abs(s - b) >= 0.5 * std::abs(b - c)
                                 : std::abs(s - b) >= 0.5 * std::abs(c - d);
    if (!between || smallStep) {
      s = mid;
      mflag = true;
    } else {
      mflag = false;
    }
    const double fs = f(s);
    d = c;
    c = b;
    fc = fb;
    if (sameSign(fa, fs)) {
      a = s;
      fa = fs;
    } else {
      b = s;
      fb = fs;
    }
    if (std::abs(fa) < std::abs(fb)) {
      std::swap(a, b);
      std::swap(fa, fb);
    }
  }
  r.x = b;
  r.fx = fb;
  r.converged = false;
  return r;
}

SolveResult bracketAndSolve(const std::function<double(double)>& f, double lo,
                            double hi, int maxExpand, double xtol) {
  double flo = f(lo);
  double fhi = f(hi);
  int expansions = 0;
  while (sameSign(flo, fhi) && expansions < maxExpand) {
    const double width = hi - lo;
    // Expand the side whose value is smaller in magnitude (closer to the
    // root, so grow away from it less aggressively).
    if (std::abs(flo) < std::abs(fhi)) {
      lo -= width;
      flo = f(lo);
    } else {
      hi += width;
      fhi = f(hi);
    }
    ++expansions;
  }
  if (sameSign(flo, fhi)) {
    throw std::invalid_argument("bracketAndSolve: failed to bracket a root");
  }
  return brent(f, lo, hi, xtol);
}

SolveResult minimizeGolden(const std::function<double(double)>& f, double lo,
                           double hi, double xtol, int maxIter) {
  constexpr double invPhi = 0.6180339887498949;
  double a = lo, b = hi;
  double x1 = b - invPhi * (b - a);
  double x2 = a + invPhi * (b - a);
  double f1 = f(x1), f2 = f(x2);
  SolveResult r;
  for (int i = 0; i < maxIter && (b - a) > xtol; ++i) {
    r.iterations = i + 1;
    if (f1 < f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - invPhi * (b - a);
      f1 = f(x1);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + invPhi * (b - a);
      f2 = f(x2);
    }
  }
  r.x = 0.5 * (a + b);
  r.fx = f(r.x);
  r.converged = (b - a) <= xtol;
  return r;
}

LinearInterpolator::LinearInterpolator(std::vector<double> xs,
                                       std::vector<double> ys)
    : xs_(std::move(xs)), ys_(std::move(ys)) {
  if (xs_.size() != ys_.size() || xs_.size() < 2) {
    throw std::invalid_argument("LinearInterpolator: need >= 2 matching points");
  }
  for (std::size_t i = 1; i < xs_.size(); ++i) {
    if (xs_[i] <= xs_[i - 1]) {
      throw std::invalid_argument("LinearInterpolator: xs must be increasing");
    }
  }
}

double LinearInterpolator::operator()(double x) const {
  // Segment selection with clamped extrapolation from the end segments.
  auto it = std::upper_bound(xs_.begin(), xs_.end(), x);
  std::size_t hi = static_cast<std::size_t>(it - xs_.begin());
  if (hi == 0) hi = 1;
  if (hi >= xs_.size()) hi = xs_.size() - 1;
  const std::size_t lo = hi - 1;
  const double t = (x - xs_[lo]) / (xs_[hi] - xs_[lo]);
  return ys_[lo] + t * (ys_[hi] - ys_[lo]);
}

std::vector<double> linspace(double lo, double hi, int n) {
  if (n < 2) throw std::invalid_argument("linspace: n must be >= 2");
  std::vector<double> out(static_cast<std::size_t>(n));
  const double step = (hi - lo) / (n - 1);
  for (int i = 0; i < n; ++i) out[static_cast<std::size_t>(i)] = lo + step * i;
  out.back() = hi;
  return out;
}

std::vector<double> logspace(double lo, double hi, int n) {
  if (lo <= 0 || hi <= 0) throw std::invalid_argument("logspace: bounds must be > 0");
  auto exps = linspace(std::log10(lo), std::log10(hi), n);
  for (double& e : exps) e = std::pow(10.0, e);
  exps.back() = hi;
  return exps;
}

double trapz(const std::vector<double>& xs, const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.size() < 2) {
    throw std::invalid_argument("trapz: need >= 2 matching points");
  }
  double sum = 0.0;
  for (std::size_t i = 1; i < xs.size(); ++i) {
    sum += 0.5 * (ys[i] + ys[i - 1]) * (xs[i] - xs[i - 1]);
  }
  return sum;
}

bool approxEqual(double a, double b, double rtol, double atol) {
  return std::abs(a - b) <= atol + rtol * std::max(std::abs(a), std::abs(b));
}

}  // namespace nano::util
