#include "util/numeric.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace nano::util {

namespace {

bool sameSign(double a, double b) { return (a > 0) == (b > 0); }

bool finite(double v) { return std::isfinite(v); }

/// Shared failure exit: classic (throwing) wrappers translate the
/// structured statuses back into the historical exception contract.
SolveResult orThrow(SolveResult r, const char* what) {
  if (r.status == SolverStatus::BracketFailure ||
      r.status == SolverStatus::NanDetected) {
    throw std::invalid_argument(std::string(what) + ": " +
                                solverStatusName(r.status));
  }
  return r;
}

}  // namespace

const char* solverStatusName(SolverStatus status) {
  switch (status) {
    case SolverStatus::Converged: return "converged";
    case SolverStatus::MaxIterations: return "max-iterations";
    case SolverStatus::BracketFailure: return "bracket-failure";
    case SolverStatus::NanDetected: return "nan-detected";
  }
  return "unknown";
}

std::string Diagnostics::describe() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%s: %s after %d iterations, residual %.3g",
                kernel[0] ? kernel : "solver", solverStatusName(status),
                iterations, residual);
  return buf;
}

Diagnostics SolveResult::diagnostics() const {
  Diagnostics d;
  d.status = status;
  d.iterations = iterations;
  d.residual = std::abs(fx);
  d.kernel = kernel;
  return d;
}

SolveResult tryBisect(const std::function<double(double)>& f, double lo,
                      double hi, double xtol, int maxIter) {
  SolveResult r;
  r.kernel = "bisect";
  if (!finite(lo) || !finite(hi)) {
    r.x = lo;
    r.fx = std::nan("");
    r.status = SolverStatus::NanDetected;
    return r;
  }
  double flo = f(lo);
  double fhi = f(hi);
  if (!finite(flo) || !finite(fhi)) {
    r.x = finite(flo) ? hi : lo;
    r.fx = finite(flo) ? fhi : flo;
    r.status = SolverStatus::NanDetected;
    return r;
  }
  auto exact = [&](double x) {
    r.x = x;
    r.fx = 0.0;
    r.converged = true;
    r.status = SolverStatus::Converged;
    return r;
  };
  if (flo == 0.0) return exact(lo);
  if (fhi == 0.0) return exact(hi);
  if (sameSign(flo, fhi)) {
    r.x = std::abs(flo) < std::abs(fhi) ? lo : hi;
    r.fx = std::abs(flo) < std::abs(fhi) ? flo : fhi;
    r.status = SolverStatus::BracketFailure;
    return r;
  }
  for (int i = 0; i < maxIter; ++i) {
    const double mid = 0.5 * (lo + hi);
    const double fmid = f(mid);
    r.iterations = i + 1;
    if (!finite(fmid)) {
      r.x = mid;
      r.fx = fmid;
      r.status = SolverStatus::NanDetected;
      return r;
    }
    if (fmid == 0.0 || (hi - lo) < xtol) {
      r.x = mid;
      r.fx = fmid;
      r.converged = true;
      r.status = SolverStatus::Converged;
      return r;
    }
    if (sameSign(flo, fmid)) {
      lo = mid;
      flo = fmid;
    } else {
      hi = mid;
    }
  }
  r.x = 0.5 * (lo + hi);
  r.fx = f(r.x);
  r.converged = (hi - lo) < xtol;
  r.status = r.converged ? SolverStatus::Converged : SolverStatus::MaxIterations;
  return r;
}

SolveResult bisect(const std::function<double(double)>& f, double lo, double hi,
                   double xtol, int maxIter) {
  return orThrow(tryBisect(f, lo, hi, xtol, maxIter),
                 "bisect: interval does not bracket a root");
}

SolveResult tryBrent(const std::function<double(double)>& f, double lo,
                     double hi, double xtol, int maxIter) {
  SolveResult r;
  r.kernel = "brent";
  if (!finite(lo) || !finite(hi)) {
    r.x = lo;
    r.fx = std::nan("");
    r.status = SolverStatus::NanDetected;
    return r;
  }
  double a = lo, b = hi;
  double fa = f(a), fb = f(b);
  if (!finite(fa) || !finite(fb)) {
    r.x = finite(fa) ? b : a;
    r.fx = finite(fa) ? fb : fa;
    r.status = SolverStatus::NanDetected;
    return r;
  }
  auto exact = [&](double x) {
    r.x = x;
    r.fx = 0.0;
    r.converged = true;
    r.status = SolverStatus::Converged;
    return r;
  };
  if (fa == 0.0) return exact(a);
  if (fb == 0.0) return exact(b);
  if (sameSign(fa, fb)) {
    r.x = std::abs(fa) < std::abs(fb) ? a : b;
    r.fx = std::abs(fa) < std::abs(fb) ? fa : fb;
    r.status = SolverStatus::BracketFailure;
    return r;
  }
  if (std::abs(fa) < std::abs(fb)) {
    std::swap(a, b);
    std::swap(fa, fb);
  }
  double c = a, fc = fa;
  double d = b - a;  // last step when bisection used
  bool mflag = true;
  for (int i = 0; i < maxIter; ++i) {
    r.iterations = i + 1;
    if (fb == 0.0 || std::abs(b - a) < xtol) {
      r.x = b;
      r.fx = fb;
      r.converged = true;
      r.status = SolverStatus::Converged;
      return r;
    }
    double s;
    if (fa != fc && fb != fc) {
      // Inverse quadratic interpolation.
      s = a * fb * fc / ((fa - fb) * (fa - fc)) +
          b * fa * fc / ((fb - fa) * (fb - fc)) +
          c * fa * fb / ((fc - fa) * (fc - fb));
    } else {
      // Secant.
      s = b - fb * (b - a) / (fb - fa);
    }
    const double mid = 0.5 * (a + b);
    const bool between = (s > std::min(mid, b)) && (s < std::max(mid, b));
    const bool smallStep = mflag ? std::abs(s - b) >= 0.5 * std::abs(b - c)
                                 : std::abs(s - b) >= 0.5 * std::abs(c - d);
    if (!between || smallStep) {
      s = mid;
      mflag = true;
    } else {
      mflag = false;
    }
    const double fs = f(s);
    if (!finite(fs)) {
      // Report the best bracketed iterate, not the poisoned probe point.
      r.x = b;
      r.fx = fb;
      r.status = SolverStatus::NanDetected;
      return r;
    }
    d = c;
    c = b;
    fc = fb;
    if (sameSign(fa, fs)) {
      a = s;
      fa = fs;
    } else {
      b = s;
      fb = fs;
    }
    if (std::abs(fa) < std::abs(fb)) {
      std::swap(a, b);
      std::swap(fa, fb);
    }
  }
  r.x = b;
  r.fx = fb;
  r.converged = false;
  r.status = SolverStatus::MaxIterations;
  return r;
}

SolveResult brent(const std::function<double(double)>& f, double lo, double hi,
                  double xtol, int maxIter) {
  return orThrow(tryBrent(f, lo, hi, xtol, maxIter),
                 "brent: interval does not bracket a root");
}

SolveResult tryBracketAndSolve(const std::function<double(double)>& f,
                               double lo, double hi, int maxExpand,
                               double xtol, int maxIter) {
  SolveResult r;
  r.kernel = "bracketAndSolve";
  if (!finite(lo) || !finite(hi)) {
    r.x = lo;
    r.fx = std::nan("");
    r.status = SolverStatus::NanDetected;
    return r;
  }
  if (hi < lo) std::swap(lo, hi);
  if (hi == lo) {
    // Degenerate interval: give the expansion a finite width to double.
    hi = lo + std::max(1e-12, std::abs(lo) * 1e-9);
  }
  double flo = f(lo);
  double fhi = f(hi);
  int expansions = 0;
  auto exact = [&](double x) {
    r.x = x;
    r.fx = 0.0;
    r.iterations = expansions;
    r.converged = true;
    r.status = SolverStatus::Converged;
    return r;
  };
  while (true) {
    if (!finite(flo) || !finite(fhi)) {
      r.x = finite(flo) ? hi : lo;
      r.fx = finite(flo) ? fhi : flo;
      r.iterations = expansions;
      r.status = SolverStatus::NanDetected;
      return r;
    }
    // An expansion step can land exactly on a root; sameSign() classifies
    // an exact zero as negative, so without this check the loop either
    // expands past the root or gives up with "failed to bracket".
    if (flo == 0.0) return exact(lo);
    if (fhi == 0.0) return exact(hi);
    if (!sameSign(flo, fhi)) break;
    if (expansions >= maxExpand) {
      r.x = std::abs(flo) < std::abs(fhi) ? lo : hi;
      r.fx = std::abs(flo) < std::abs(fhi) ? flo : fhi;
      r.iterations = expansions;
      r.status = SolverStatus::BracketFailure;
      return r;
    }
    const double width = hi - lo;
    // Expand the side whose value is smaller in magnitude (closer to the
    // root, so grow away from it less aggressively).
    if (std::abs(flo) < std::abs(fhi)) {
      lo -= width;
      flo = f(lo);
    } else {
      hi += width;
      fhi = f(hi);
    }
    ++expansions;
  }
  r = tryBrent(f, lo, hi, xtol, maxIter);
  r.kernel = "bracketAndSolve";
  r.iterations += expansions;
  if (r.status == SolverStatus::MaxIterations) {
    // Recovery ladder: a stalled Brent solve still holds a valid bracket,
    // and plain bisection is guaranteed to shrink it.
    SolveResult fallback =
        tryBisect(f, lo, hi, xtol, std::max(2 * maxIter, 200));
    fallback.kernel = "bracketAndSolve";
    fallback.iterations += r.iterations;
    if (fallback.status == SolverStatus::Converged) return fallback;
    if (std::abs(fallback.fx) < std::abs(r.fx)) {
      fallback.status = SolverStatus::MaxIterations;
      return fallback;
    }
  }
  return r;
}

SolveResult bracketAndSolve(const std::function<double(double)>& f, double lo,
                            double hi, int maxExpand, double xtol) {
  return orThrow(tryBracketAndSolve(f, lo, hi, maxExpand, xtol),
                 "bracketAndSolve: failed to bracket a root");
}

SolveResult tryMinimizeGolden(const std::function<double(double)>& f,
                              double lo, double hi, double xtol, int maxIter) {
  constexpr double invPhi = 0.6180339887498949;
  SolveResult r;
  r.kernel = "minimizeGolden";
  if (!finite(lo) || !finite(hi)) {
    r.x = lo;
    r.fx = std::nan("");
    r.status = SolverStatus::NanDetected;
    return r;
  }
  double a = lo, b = hi;
  double x1 = b - invPhi * (b - a);
  double x2 = a + invPhi * (b - a);
  double f1 = f(x1), f2 = f(x2);
  auto poisoned = [&]() {
    // Keep the best finite probe; the caller decides how to recover.
    r.x = finite(f1) ? x1 : x2;
    r.fx = finite(f1) ? f1 : f2;
    if (!finite(r.fx)) {
      r.x = 0.5 * (a + b);
      r.fx = std::nan("");
    }
    r.status = SolverStatus::NanDetected;
    return r;
  };
  if (!finite(f1) || !finite(f2)) return poisoned();
  for (int i = 0; i < maxIter && (b - a) > xtol; ++i) {
    r.iterations = i + 1;
    if (f1 < f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - invPhi * (b - a);
      f1 = f(x1);
      if (!finite(f1)) return poisoned();
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + invPhi * (b - a);
      f2 = f(x2);
      if (!finite(f2)) return poisoned();
    }
  }
  r.x = 0.5 * (a + b);
  r.fx = f(r.x);
  r.converged = (b - a) <= xtol;
  r.status = r.converged ? SolverStatus::Converged : SolverStatus::MaxIterations;
  return r;
}

SolveResult minimizeGolden(const std::function<double(double)>& f, double lo,
                           double hi, double xtol, int maxIter) {
  return orThrow(tryMinimizeGolden(f, lo, hi, xtol, maxIter),
                 "minimizeGolden: non-finite evaluation");
}

LinearInterpolator::LinearInterpolator(std::vector<double> xs,
                                       std::vector<double> ys)
    : xs_(std::move(xs)), ys_(std::move(ys)) {
  if (xs_.size() != ys_.size() || xs_.size() < 2) {
    throw std::invalid_argument("LinearInterpolator: need >= 2 matching points");
  }
  for (std::size_t i = 1; i < xs_.size(); ++i) {
    if (xs_[i] <= xs_[i - 1]) {
      throw std::invalid_argument("LinearInterpolator: xs must be increasing");
    }
  }
}

double LinearInterpolator::operator()(double x) const {
  // Clamped extrapolation: outside the table the end value holds, so
  // roadmap lookups past the last node can never run negative.
  if (x <= xs_.front()) return ys_.front();
  if (x >= xs_.back()) return ys_.back();
  auto it = std::upper_bound(xs_.begin(), xs_.end(), x);
  std::size_t hi = static_cast<std::size_t>(it - xs_.begin());
  if (hi == 0) hi = 1;
  if (hi >= xs_.size()) hi = xs_.size() - 1;
  const std::size_t lo = hi - 1;
  const double t = (x - xs_[lo]) / (xs_[hi] - xs_[lo]);
  return ys_[lo] + t * (ys_[hi] - ys_[lo]);
}

std::vector<double> linspace(double lo, double hi, int n) {
  if (n < 2) throw std::invalid_argument("linspace: n must be >= 2");
  std::vector<double> out(static_cast<std::size_t>(n));
  const double step = (hi - lo) / (n - 1);
  for (int i = 0; i < n; ++i) out[static_cast<std::size_t>(i)] = lo + step * i;
  out.back() = hi;
  return out;
}

std::vector<double> logspace(double lo, double hi, int n) {
  if (lo <= 0 || hi <= 0) throw std::invalid_argument("logspace: bounds must be > 0");
  auto exps = linspace(std::log10(lo), std::log10(hi), n);
  for (double& e : exps) e = std::pow(10.0, e);
  exps.back() = hi;
  return exps;
}

double trapz(const std::vector<double>& xs, const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.size() < 2) {
    throw std::invalid_argument("trapz: need >= 2 matching points");
  }
  double sum = 0.0;
  for (std::size_t i = 1; i < xs.size(); ++i) {
    sum += 0.5 * (ys[i] + ys[i - 1]) * (xs[i] - xs[i - 1]);
  }
  return sum;
}

bool approxEqual(double a, double b, double rtol, double atol) {
  return std::abs(a - b) <= atol + rtol * std::max(std::abs(a), std::abs(b));
}

}  // namespace nano::util
