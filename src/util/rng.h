// Deterministic PRNG wrapper. All stochastic code in nanodesign (circuit
// generation, Monte-Carlo sweeps, workload traces) takes an explicit Rng so
// results are reproducible from a seed.
#pragma once

#include <cstdint>
#include <random>

namespace nano::util {

/// Thin wrapper over std::mt19937_64 with convenience draws.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double uniform() { return dist01_(engine_); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] inclusive.
  int uniformInt(int lo, int hi) {
    std::uniform_int_distribution<int> d(lo, hi);
    return d(engine_);
  }

  /// Normal draw.
  double normal(double mean = 0.0, double stddev = 1.0) {
    std::normal_distribution<double> d(mean, stddev);
    return d(engine_);
  }

  /// Exponential draw with given mean.
  double exponential(double mean) {
    std::exponential_distribution<double> d(1.0 / mean);
    return d(engine_);
  }

  /// Bernoulli draw.
  bool bernoulli(double pTrue) { return uniform() < pTrue; }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> dist01_{0.0, 1.0};
};

}  // namespace nano::util
