// Small numerics toolbox: root finding, 1-D minimization, interpolation,
// and range generation. All routines are deterministic and allocation-free
// except the range generators.
#pragma once

#include <functional>
#include <stdexcept>
#include <vector>

namespace nano::util {

/// Result of an iterative solve.
struct SolveResult {
  double x = 0.0;        ///< located root / minimizer
  double fx = 0.0;       ///< function value at x
  int iterations = 0;    ///< iterations consumed
  bool converged = false;
};

/// Find a root of `f` in [lo, hi] by bisection. Requires f(lo) and f(hi) to
/// bracket a sign change; throws std::invalid_argument otherwise.
SolveResult bisect(const std::function<double(double)>& f, double lo, double hi,
                   double xtol = 1e-12, int maxIter = 200);

/// Brent's method root finder (inverse quadratic interpolation + bisection
/// fallback). Same bracketing requirement as bisect(), faster convergence.
SolveResult brent(const std::function<double(double)>& f, double lo, double hi,
                  double xtol = 1e-12, int maxIter = 100);

/// Expand [lo, hi] geometrically until f changes sign, then solve with brent.
/// Useful when only a one-sided starting guess is available. Throws if no
/// bracket is found within `maxExpand` doublings.
SolveResult bracketAndSolve(const std::function<double(double)>& f, double lo,
                            double hi, int maxExpand = 60, double xtol = 1e-12);

/// Golden-section minimization of a unimodal `f` on [lo, hi].
SolveResult minimizeGolden(const std::function<double(double)>& f, double lo,
                           double hi, double xtol = 1e-10, int maxIter = 200);

/// Piecewise-linear interpolation through (xs, ys); xs must be strictly
/// increasing. Values outside the domain are linearly extrapolated from the
/// nearest segment.
class LinearInterpolator {
 public:
  LinearInterpolator(std::vector<double> xs, std::vector<double> ys);
  double operator()(double x) const;
  [[nodiscard]] std::size_t size() const { return xs_.size(); }

 private:
  std::vector<double> xs_;
  std::vector<double> ys_;
};

/// n evenly spaced samples covering [lo, hi] inclusive (n >= 2).
std::vector<double> linspace(double lo, double hi, int n);

/// n logarithmically spaced samples covering [lo, hi] inclusive
/// (lo, hi > 0, n >= 2).
std::vector<double> logspace(double lo, double hi, int n);

/// Trapezoidal integral of sampled data (xs strictly increasing).
double trapz(const std::vector<double>& xs, const std::vector<double>& ys);

/// True when |a - b| <= atol + rtol * max(|a|, |b|).
bool approxEqual(double a, double b, double rtol = 1e-9, double atol = 0.0);

}  // namespace nano::util
