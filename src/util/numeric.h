// Small numerics toolbox: root finding, 1-D minimization, interpolation,
// and range generation. All routines are deterministic and allocation-free
// except the range generators.
//
// Every iterative kernel reports a structured SolverStatus instead of (or in
// addition to) throwing: the try* variants never throw on numerical failure
// and return the best iterate with a Diagnostics record, while the classic
// names keep their historical throw-on-bad-bracket contract by wrapping the
// try* versions. See docs/ROBUSTNESS.md for the recovery ladder.
#pragma once

#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

namespace nano::util {

/// How an iterative solve ended.
enum class SolverStatus {
  Converged,      ///< tolerance met (or exact root hit)
  MaxIterations,  ///< iteration budget exhausted before tolerance
  BracketFailure, ///< no sign change found / degenerate interval
  NanDetected,    ///< NaN or Inf encountered in inputs or f evaluations
};

/// Short stable name for a status ("converged", "max-iterations", ...).
const char* solverStatusName(SolverStatus status);

/// Structured outcome of one solver invocation, cheap to copy and safe to
/// carry across sweep points. `kernel` is a static string naming the
/// routine (and, for domain solvers, the model quantity being solved).
struct Diagnostics {
  SolverStatus status = SolverStatus::MaxIterations;
  int iterations = 0;      ///< total iterations across the recovery ladder
  double residual = 0.0;   ///< |f(x)| (roots) or final interval (minimizers)
  const char* kernel = ""; ///< static name of the kernel that produced this
  [[nodiscard]] bool ok() const { return status == SolverStatus::Converged; }
  /// One-line human-readable summary, e.g.
  /// "brent: max-iterations after 100 iterations, residual 3.2e-05".
  [[nodiscard]] std::string describe() const;
};

/// Result of an iterative solve.
struct SolveResult {
  double x = 0.0;        ///< located root / minimizer (best iterate on failure)
  double fx = 0.0;       ///< function value at x
  int iterations = 0;    ///< iterations consumed
  bool converged = false;
  SolverStatus status = SolverStatus::MaxIterations;
  const char* kernel = "";
  /// Structured view of the outcome (residual = |fx|).
  [[nodiscard]] Diagnostics diagnostics() const;
};

/// Find a root of `f` in [lo, hi] by bisection. Requires f(lo) and f(hi) to
/// bracket a sign change; throws std::invalid_argument otherwise.
SolveResult bisect(const std::function<double(double)>& f, double lo, double hi,
                   double xtol = 1e-12, int maxIter = 200);

/// Non-throwing bisect: reports BracketFailure / NanDetected through the
/// result status instead of throwing; never raises on numerical failure.
SolveResult tryBisect(const std::function<double(double)>& f, double lo,
                      double hi, double xtol = 1e-12, int maxIter = 200);

/// Brent's method root finder (inverse quadratic interpolation + bisection
/// fallback). Same bracketing requirement as bisect(), faster convergence.
SolveResult brent(const std::function<double(double)>& f, double lo, double hi,
                  double xtol = 1e-12, int maxIter = 100);

/// Non-throwing brent: status instead of exceptions, NaN guards on every
/// function evaluation.
SolveResult tryBrent(const std::function<double(double)>& f, double lo,
                     double hi, double xtol = 1e-12, int maxIter = 100);

/// Expand [lo, hi] geometrically until f changes sign, then solve with brent.
/// Useful when only a one-sided starting guess is available. Throws if no
/// bracket is found within `maxExpand` doublings.
SolveResult bracketAndSolve(const std::function<double(double)>& f, double lo,
                            double hi, int maxExpand = 60, double xtol = 1e-12);

/// Non-throwing bracketAndSolve with the full recovery ladder: degenerate
/// intervals are widened, an expansion step landing exactly on a root
/// returns immediately, and a Brent solve that exhausts `maxIter` falls
/// back to bisection on the bracket before reporting MaxIterations.
SolveResult tryBracketAndSolve(const std::function<double(double)>& f,
                               double lo, double hi, int maxExpand = 60,
                               double xtol = 1e-12, int maxIter = 100);

/// Golden-section minimization of a unimodal `f` on [lo, hi].
SolveResult minimizeGolden(const std::function<double(double)>& f, double lo,
                           double hi, double xtol = 1e-10, int maxIter = 200);

/// Non-throwing golden search: NaN guards on every evaluation; a poisoned
/// evaluation stops the shrink and reports NanDetected with the best
/// finite iterate seen so far.
SolveResult tryMinimizeGolden(const std::function<double(double)>& f,
                              double lo, double hi, double xtol = 1e-10,
                              int maxIter = 200);

/// Piecewise-linear interpolation through (xs, ys); xs must be strictly
/// increasing. Values outside the domain are clamped to the boundary
/// values (no extrapolation): roadmap lookups past the table range hold
/// the end value instead of running linear trends negative.
class LinearInterpolator {
 public:
  LinearInterpolator(std::vector<double> xs, std::vector<double> ys);
  double operator()(double x) const;
  [[nodiscard]] std::size_t size() const { return xs_.size(); }

 private:
  std::vector<double> xs_;
  std::vector<double> ys_;
};

/// n evenly spaced samples covering [lo, hi] inclusive (n >= 2).
std::vector<double> linspace(double lo, double hi, int n);

/// n logarithmically spaced samples covering [lo, hi] inclusive
/// (lo, hi > 0, n >= 2).
std::vector<double> logspace(double lo, double hi, int n);

/// Trapezoidal integral of sampled data (xs strictly increasing).
double trapz(const std::vector<double>& xs, const std::vector<double>& ys);

/// True when |a - b| <= atol + rtol * max(|a|, |b|).
bool approxEqual(double a, double b, double rtol = 1e-9, double atol = 0.0);

}  // namespace nano::util
