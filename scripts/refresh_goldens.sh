#!/usr/bin/env sh
# Regenerate the golden figure/table CSVs and the nanod replay golden
# under golden/ from the bench binaries and the nanod tool. Run after an
# intentional model change, then re-run golden_test + svc_replay_test and
# commit the diff alongside the change that caused it.
#
# Usage: scripts/refresh_goldens.sh [build-dir]   (default: build)
set -eu
cd "$(dirname "$0")/.."
BUILD=${1:-build}
for bench in fig1 fig2 fig3 fig4 fig5 table2 repeaters; do
  bin="$BUILD/bench/bench_$bench"
  if [ ! -x "$bin" ]; then
    echo "missing $bin -- build the bench targets first" >&2
    exit 1
  fi
  "$bin" > /dev/null
done
mkdir -p golden
for csv in fig1 fig2 fig3 fig4 fig5 table2 repeaters; do
  mv "$csv.csv" "golden/$csv.csv"
done

# Canonical closed-loop scenario traces (scenario_golden_test re-checks
# them byte-for-byte at 1, 2, and 8 lanes).
scenario_gen="$BUILD/tools/scenario_gen"
if [ ! -x "$scenario_gen" ]; then
  echo "missing $scenario_gen -- build the tools targets first" >&2
  exit 1
fi
"$scenario_gen" golden

# Replay the committed request trace through nanod at one exec lane
# (--block so nothing sheds; the output is byte-identical at any lane
# count, which svc_replay_test re-checks at the session default).
nanod="$BUILD/tools/nanod"
if [ ! -x "$nanod" ]; then
  echo "missing $nanod -- build the tools targets first" >&2
  exit 1
fi
NANO_EXEC_THREADS=1 "$nanod" --input golden/nanod_trace.jsonl --block \
  > golden/nanod_replay.jsonl

echo "refreshed: $(ls golden/*.csv golden/nanod_replay.jsonl | tr '\n' ' ')"
echo "re-run golden_test, scenario_golden_test, svc_replay_test, net_test"
