#!/usr/bin/env sh
# Regenerate the golden figure/table CSVs under golden/ from the bench
# binaries. Run after an intentional model change, then re-run golden_test
# and commit the diff alongside the change that caused it.
#
# Usage: scripts/refresh_goldens.sh [build-dir]   (default: build)
set -eu
cd "$(dirname "$0")/.."
BUILD=${1:-build}
for bench in fig1 fig2 fig3 fig4 fig5 table2 repeaters; do
  bin="$BUILD/bench/bench_$bench"
  if [ ! -x "$bin" ]; then
    echo "missing $bin -- build the bench targets first" >&2
    exit 1
  fi
  "$bin" > /dev/null
done
mkdir -p golden
for csv in fig1 fig2 fig3 fig4 fig5 table2 repeaters; do
  mv "$csv.csv" "golden/$csv.csv"
done
echo "refreshed: $(ls golden/*.csv | tr '\n' ' ')"
