#!/usr/bin/env sh
# Run the kernel benchmarks and capture machine-readable numbers.
#
#   scripts/bench_to_json.sh [build-dir] [out.json] [extra benchmark args...]
#
# Defaults: build dir ./build, output ./BENCH_PR5.json. The google-benchmark
# JSON reporter carries per-benchmark real/cpu time plus our custom counters
# (fraction_high_vth, nodes_repropagated_per_swap, threads, hit_rate, ...), so the
# acceptance numbers for a PR are one `jq` away. NANO_OBS=1 additionally
# prints the observability run report (exec/* and sta/incremental_* tallies)
# to stderr alongside.
set -eu

build_dir="${1:-build}"
out="${2:-BENCH_PR5.json}"
[ $# -ge 1 ] && shift
[ $# -ge 1 ] && shift

bench="$build_dir/bench/bench_perf"
if [ ! -x "$bench" ]; then
  echo "error: $bench not built (cmake -B $build_dir -S . && cmake --build $build_dir -j)" >&2
  exit 1
fi

"$bench" --benchmark_out="$out" --benchmark_out_format=json "$@"
echo "wrote $out" >&2
