#!/usr/bin/env bash
# Every metric registered with a string literal anywhere in src/ or tools/
# must be documented in docs/OBSERVABILITY.md. The doc's table shorthands
# are understood: `svc/cache_{hits,misses}` expands, and placeholder rows
# like `svc/latency/<kind>` match their whole dynamic family. Prints the
# undocumented names and exits 1 when any are missing (CI runs this).
set -euo pipefail
cd "$(dirname "$0")/.."
doc=docs/OBSERVABILITY.md

# Literal registration sites: the NANO_OBS_* macros and direct registry
# calls. Dynamically-built names (string concatenation) cannot be grepped;
# they must be documented via a placeholder row.
mapfile -t registered < <(
  grep -rhoE 'NANO_OBS_(COUNT|GAUGE|TIMER|SPAN)\("[^"]+"|\.(counter|gauge|timer)\("[^"]+"' \
    src tools |
    sed -E 's/.*\("//; s/"$//' | sort -u
)
if [[ ${#registered[@]} -eq 0 ]]; then
  echo "check_metrics_docs: found no registered metrics under src/ -- broken grep?" >&2
  exit 1
fi

# Documented names: every backticked token in the doc that could be a
# metric path, with {a,b,c} shorthands expanded one name per line.
documented=$(
  grep -oE '`[A-Za-z0-9_/{},<>-]+`' "$doc" | tr -d '`' | while read -r tok; do
    case $tok in
      *'<'*) printf '%s\n' "$tok" ;;              # placeholder row, verbatim
      *'{'*) eval "printf '%s\n' $tok" ;;         # brace shorthand
      *) printf '%s\n' "$tok" ;;
    esac
  done | sort -u
)

missing=0
for name in "${registered[@]}"; do
  found=0
  while IFS= read -r d; do
    if [[ $d == "$name" ]]; then
      found=1
      break
    fi
    # Placeholder rows: `svc/latency/<kind>` documents svc/latency/total
    # (glob match) and any truncated prefix grep captured (prefix match).
    glob=$(sed 's/<[^>]*>/*/g' <<<"$d")
    if [[ $glob != "$d" && ($name == $glob || $d == "$name"*) ]]; then
      found=1
      break
    fi
  done <<<"$documented"
  if [[ $found -eq 0 ]]; then
    echo "check_metrics_docs: '$name' is registered in src/ but not documented in $doc" >&2
    missing=$((missing + 1))
  fi
done

if [[ $missing -gt 0 ]]; then
  echo "check_metrics_docs: $missing undocumented metric(s); add them to the $doc tables" >&2
  exit 1
fi
echo "check_metrics_docs: all ${#registered[@]} registered metric names are documented"
