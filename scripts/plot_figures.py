#!/usr/bin/env python3
"""Plot the paper-figure CSVs the bench binaries emit.

Usage:
    for b in build/bench/*; do (cd out && ../$b); done   # or run benches anywhere
    python3 scripts/plot_figures.py [csv_dir] [out_dir]

Reads fig1.csv .. fig5.csv, table2.csv, repeaters.csv, design_space.csv
(whichever exist in csv_dir, default '.') and writes PNGs next to them.
Requires matplotlib; exits gracefully without it.
"""
import csv
import os
import sys


def load(path):
    with open(path) as f:
        rows = list(csv.reader(f))
    header, data = rows[0], rows[1:]
    cols = {name: [float(r[i]) for r in data] for i, name in enumerate(header)}
    return cols


def main():
    csv_dir = sys.argv[1] if len(sys.argv) > 1 else "."
    out_dir = sys.argv[2] if len(sys.argv) > 2 else csv_dir
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib not available; skipping plots")
        return 0

    def save(fig, name):
        path = os.path.join(out_dir, name)
        fig.savefig(path, dpi=150, bbox_inches="tight")
        print("wrote", path)

    def have(name):
        return os.path.exists(os.path.join(csv_dir, name))

    if have("fig1.csv"):
        c = load(os.path.join(csv_dir, "fig1.csv"))
        fig, ax = plt.subplots()
        for key, label in [("r70nm_09V", "70 nm, 0.9 V"),
                           ("r50nm_07V", "50 nm, 0.7 V"),
                           ("r50nm_06V", "50 nm, 0.6 V")]:
            ax.loglog(c["activity"], c[key], "o-", label=label)
        ax.set_xlabel("switching activity")
        ax.set_ylabel("Pstatic / Pdynamic")
        ax.set_title("Figure 1 (85 C)")
        ax.legend()
        ax.grid(True, which="both", alpha=0.3)
        save(fig, "fig1.png")

    if have("fig2.csv"):
        c = load(os.path.join(csv_dir, "fig2.csv"))
        fig, ax1 = plt.subplots()
        ax1.plot(c["node_nm"], c["ion_gain_pct"], "o-", color="tab:blue",
                 label="Ion gain, dVth=-100 mV (%)")
        ax1.set_xlabel("technology node (nm)")
        ax1.set_ylabel("Ion gain (%)", color="tab:blue")
        ax1.invert_xaxis()
        ax2 = ax1.twinx()
        ax2.semilogy(c["node_nm"], c["ioff_penalty"], "s--", color="tab:red",
                     label="Ioff penalty for +20% Ion")
        ax2.set_ylabel("Ioff penalty (x)", color="tab:red")
        ax1.set_title("Figure 2: dual-Vth scalability")
        save(fig, "fig2.png")

    if have("fig3.csv"):
        c = load(os.path.join(csv_dir, "fig3.csv"))
        fig, ax = plt.subplots()
        for key, label in [("delay_const", "constant Vth"),
                           ("delay_scaled", "scaled Vth (Pstat const)"),
                           ("delay_conservative", "conservative")]:
            ax.plot(c["vdd"], c[key], "o-", label=label)
        ax.set_xlabel("Vdd (V)")
        ax.set_ylabel("normalized delay")
        ax.set_title("Figure 3 (35 nm)")
        ax.legend()
        ax.grid(alpha=0.3)
        save(fig, "fig3.png")

    if have("fig4.csv"):
        c = load(os.path.join(csv_dir, "fig4.csv"))
        fig, ax = plt.subplots()
        for key, label in [("ratio_const", "constant Vth"),
                           ("ratio_scaled", "scaled Vth (Pstat const)"),
                           ("ratio_conservative", "conservative")]:
            ax.semilogy(c["vdd"], c[key], "o-", label=label)
        ax.axhline(10.0, color="gray", ls=":", label="ITRS 10x cap")
        ax.set_xlabel("Vdd (V)")
        ax.set_ylabel("Pdynamic / Pstatic")
        ax.set_title("Figure 4 (35 nm, activity 0.1)")
        ax.legend()
        ax.grid(alpha=0.3, which="both")
        save(fig, "fig4.png")

    if have("fig5.csv"):
        c = load(os.path.join(csv_dir, "fig5.csv"))
        fig, ax = plt.subplots()
        ax.semilogy(c["node_nm"], c["w_over_min_minpitch"], "o-",
                    label="minimum bump pitch")
        ax.semilogy(c["node_nm"], c["w_over_min_itrs"], "s--",
                    label="ITRS pad counts")
        ax.set_xlabel("technology node (nm)")
        ax.set_ylabel("rail width / minimum width")
        ax.invert_xaxis()
        ax.set_title("Figure 5: IR-drop rail sizing")
        ax.legend()
        ax.grid(alpha=0.3, which="both")
        save(fig, "fig5.png")

    if have("design_space.csv"):
        c = load(os.path.join(csv_dir, "design_space.csv"))
        fig, ax = plt.subplots()
        sc = ax.scatter(c["vdd"], c["vth"],
                        c=[min(p, 3.0) for p in c["ptotal_norm"]],
                        cmap="viridis")
        fig.colorbar(sc, label="total power (norm, clipped at 3)")
        ax.set_xlabel("Vdd (V)")
        ax.set_ylabel("design Vth (V)")
        ax.set_title("(Vdd, Vth) design space, 35 nm")
        save(fig, "design_space.png")

    return 0


if __name__ == "__main__":
    sys.exit(main())
