// Scenario: clock-margin planning under Vth variability — the paper's
// Section-1 "increasing Vth fluctuations across a large die" challenge,
// carried from device mismatch (Pelgrom) through statistical STA to the
// clock period and leakage budget a real die needs.
#include <iostream>

#include "circuit/generator.h"
#include "device/variation.h"
#include "sta/ssta.h"
#include "sta/sta.h"
#include "util/table.h"

int main() {
  using namespace nano;
  using util::fmt;

  std::cout << "=== Variability margins for a 1000-gate block across the"
               " roadmap ===\n\n";

  util::TextTable t({"node (nm)", "nominal delay (ps)", "sigma (ps)",
                     "sigma/mean", "clock for 99.9% yield",
                     "margin vs nominal"});
  for (int f : {180, 100, 70, 50, 35}) {
    const auto& node = tech::nodeByFeature(f);
    const circuit::Library lib(node);
    util::Rng rng(808);
    circuit::GeneratorConfig cfg;
    cfg.gates = 1000;
    cfg.outputs = 64;
    const circuit::Netlist design = circuit::pipelinedLogic(lib, cfg, rng, 6);

    const auto det = sta::analyze(design);
    const auto st = sta::analyzeStatistical(design, node);
    // Clock for 99.9 % parametric yield over all endpoints (bisection on
    // the yield curve).
    double lo = st.criticalMean, hi = st.criticalMean + 8 * st.criticalSigma;
    for (int i = 0; i < 50; ++i) {
      const double mid = 0.5 * (lo + hi);
      (sta::timingYield(design, st, mid) < 0.999 ? lo : hi) = mid;
    }
    t.addRow({std::to_string(f), fmt(det.criticalPathDelay * 1e12, 0),
              fmt(st.criticalSigma * 1e12, 1),
              fmt(st.criticalSigma / st.criticalMean, 3),
              fmt(hi * 1e12, 0) + " ps",
              fmt(100 * (hi / det.criticalPathDelay - 1.0), 1) + " %"});
  }
  t.print(std::cout);
  std::cout << "(statistical MAX bias plus per-gate mismatch: the margin a"
               " die must carry grows steadily down the roadmap)\n\n";

  std::cout << "Leakage side of the same coin (minimum-width devices):\n";
  util::TextTable l({"node (nm)", "sigma Vth (mV)", "mean Ioff inflation",
                     "p95 Ioff inflation"});
  for (int f : {180, 100, 70, 50, 35}) {
    const auto& node = tech::nodeByFeature(f);
    const double vth = device::solveVthForIon(node, node.ionTarget);
    util::Rng rng(909);
    const auto spread = device::sampleLeakageSpread(
        node, vth, 2.0 * node.featureNm * 1e-9, rng, 20000);
    l.addRow({std::to_string(f), fmt(1e3 * spread.sigmaVth, 1),
              fmt(spread.meanAmplification, 2) + "x",
              fmt(spread.p95Amplification, 1) + "x"});
  }
  l.print(std::cout);
  std::cout << "(Eq. 4 is exponential in Vth, so mismatch inflates the MEAN"
               " leakage — by 35 nm the variability and static-power"
               " challenges are the same problem)\n";
  return 0;
}
