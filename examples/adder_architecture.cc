// Scenario: architecture vs circuit knobs for a 32-bit adder at 70 nm.
//
// The paper's Section 3.3 message is that slack should be converted into
// supply/threshold savings. Architecture creates that slack: a Kogge-Stone
// prefix adder is ~3x faster than ripple-carry at 3.5x the gates — run
// both through the multi-Vdd + dual-Vth + sizing flow at the SAME clock
// (the ripple adder's critical path) and see which wins on power.
#include <iostream>

#include "circuit/generator.h"
#include "opt/combined.h"
#include "util/table.h"

int main() {
  using namespace nano;
  using util::fmt;

  const auto& node = tech::nodeByFeature(70);
  const circuit::Library lib(node);
  const int bits = 32;

  const circuit::Netlist ripple = circuit::rippleCarryAdder(lib, bits);
  const circuit::Netlist kogge = circuit::koggeStoneAdder(lib, bits);

  const double rippleDelay = sta::analyze(ripple).criticalPathDelay;
  const double koggeDelay = sta::analyze(kogge).criticalPathDelay;
  std::cout << "=== " << bits << "-bit adder architectures at "
            << node.featureNm << " nm ===\n"
            << "ripple-carry: " << ripple.gateCount() << " gates, "
            << fmt(rippleDelay * 1e12, 0) << " ps critical path\n"
            << "Kogge-Stone:  " << kogge.gateCount() << " gates, "
            << fmt(koggeDelay * 1e12, 0) << " ps critical path ("
            << fmt(rippleDelay / koggeDelay, 1) << "x faster)\n\n";

  // Both run at the ripple adder's clock: the prefix adder's architectural
  // slack becomes the optimizer's raw material.
  const double clock = rippleDelay;
  const double freq = 1.0 / clock;

  util::TextTable t({"architecture", "power before (uW)", "power after (uW)",
                     "savings", "low-Vdd", "high-Vth", "timing"});
  for (const auto* entry : {&ripple, &kogge}) {
    opt::FlowOptions options;
    options.clockPeriod = clock;
    const opt::FlowResult flow = opt::runFlow(*entry, lib, options, freq);
    const auto& last = flow.stages.back();
    t.addRow({entry == &ripple ? "ripple-carry" : "Kogge-Stone",
              fmt(flow.powerBefore.total() * 1e6, 2),
              fmt(last.power.total() * 1e6, 2),
              fmt(100 * flow.totalSavings(), 0) + " %",
              fmt(100 * last.fractionLowVdd, 0) + " %",
              fmt(100 * last.fractionHighVth, 0) + " %",
              last.timing.meetsTiming() ? "met" : "VIOLATED"});
  }
  t.print(std::cout);

  std::cout << "\nReading: the prefix adder starts ~3x hungrier (3.5x the"
               " gates at the same clock), but its architectural slack lets"
               " the flow push nearly every gate to Vdd,l and high Vth — the"
               " paper's point that slack is worth more spent on supply and"
               " threshold than left on the table. Compare the two"
               " after-flow columns to see how much of the architecture gap"
               " the circuit knobs close.\n";
  return 0;
}
