// Scenario: power-delivery signoff for a 35 nm floorplan — the paper's
// Section 4 analysis as a design procedure:
//  1. size the top-level Vdd/GND rails for <10 % loop IR drop with a 4x
//     hot-spot, at the minimum bump pitch and at the ITRS pad count,
//  2. cross-check the chosen width with the full resistive-mesh solver,
//  3. audit bump current and the standby wake-up transient, sizing decap.
#include <iostream>

#include "obs/obs.h"
#include "powergrid/grid_model.h"
#include "powergrid/irdrop.h"
#include "powergrid/transient.h"
#include "util/table.h"
#include "util/units.h"

int main() {
  using namespace nano;
  using namespace nano::units;
  using util::fmt;

  const auto& node = tech::nodeByFeature(35);
  std::cout << "=== Power-grid signoff, " << node.featureNm << " nm MPU ("
            << fmt(node.dieArea / mm2, 0) << " mm^2, "
            << fmt(node.maxPower, 0) << " W at " << fmt(node.vdd, 2)
            << " V => " << fmt(node.supplyCurrent(), 0) << " A) ===\n\n";

  std::cout << "Step 1 — rail sizing (closed form, 5 % budget per polarity,"
               " 4x hot-spot):\n";
  util::TextTable t({"bump plan", "pad pitch (um)", "Vdd bumps",
                     "rail width (um)", "x min width", "% of top routing"});
  const auto minPitch = powergrid::minPitchReport(node);
  t.addRow({"minimum pitch", fmt(minPitch.padPitch * 1e6, 0),
            std::to_string(minPitch.vddBumpCount),
            fmt(minPitch.requiredWidth * 1e6, 2),
            fmt(minPitch.widthOverMin, 1),
            fmt(100 * minPitch.routingFraction, 1)});
  const auto itrs = powergrid::itrsPitchReport(node);
  t.addRow({"ITRS pad count", fmt(itrs.padPitch * 1e6, 0),
            std::to_string(itrs.vddBumpCount),
            fmt(itrs.requiredWidth * 1e6, 1), fmt(itrs.widthOverMin, 0),
            fmt(100 * itrs.routingFraction, 1)});
  t.print(std::cout);
  std::cout << "Verdict: the ITRS pad plan needs rails "
            << fmt(itrs.widthOverMin, 0)
            << "x minimum width — unusable; use the minimum bump pitch.\n\n";

  std::cout << "Step 2 — mesh cross-check at the chosen (min-pitch) width:\n";
  powergrid::GridConfig cfg = powergrid::gridConfigForNode(
      node, minPitch.widthOverMin, node.minBumpPitch);
  const auto mesh = powergrid::solveGrid(cfg);
  std::cout << "  2-D waffle solver (" << mesh.unknowns << " unknowns, "
            << mesh.cgIterations << " CG iterations): worst drop "
            << fmt(100 * mesh.maxDropFraction, 2)
            << " % of Vdd vs the 5 % 1-D budget — lateral sharing gives"
               " comfortable margin.\n\n";

  std::cout << "Step 3 — bump current and wake-up transient:\n";
  std::cout << "  hot-spot bump current at min pitch: "
            << fmt(minPitch.bumpCurrent, 2) << " A vs "
            << fmt(node.bumpCurrentLimit, 2) << " A capability => "
            << (minPitch.bumpCurrentOk ? "ok" : "NEEDS more Vdd bumps or"
                                               " derated hot-spots")
            << '\n';
  const auto wake =
      powergrid::wakeupTransient(node, powergrid::minPitchVddBumps(node));
  std::cout << "  standby exit: " << fmt(wake.deltaCurrent, 0) << " A in "
            << fmt(5.0, 0) << " ns => " << fmt(wake.noiseVoltage * 1e3, 1)
            << " mV of L*di/dt noise (budget "
            << fmt(0.05 * node.vdd * 1e3, 0) << " mV) with "
            << wake.vddBumps << " Vdd bumps; on-die decap needed: "
            << fmt(wake.decapNeeded * 1e9, 0) << " nF\n"
            << "  (the paper's warning: sleep modes make this transient the"
               " power-delivery stress case)\n";

  if (obs::enabled()) {
    std::cout << '\n';
    obs::printRunReport(std::cout);
  }
  return 0;
}
