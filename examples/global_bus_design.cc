// Scenario: designing a 128-bit cross-chip bus at 50 nm — the paper's
// Section 2.2 trade study. Compares full-swing repeated CMOS against
// low-swing differential signaling on delay, power, peak current, noise
// and routing cost, then validates the low-swing timing premise with the
// waveform-level simulator.
#include <cmath>
#include <iostream>

#include "interconnect/repeater.h"
#include "signaling/comparison.h"
#include "sim/circuit_sim.h"
#include "util/table.h"
#include "util/units.h"

int main() {
  using namespace nano;
  using namespace nano::units;
  using util::fmt;

  const auto& node = tech::nodeByFeature(50);
  const double length = 0.8 * std::sqrt(node.dieArea);
  const int bits = 128;
  std::cout << "=== " << bits << "-bit bus, " << fmt(length * 1e3, 1)
            << " mm across a " << node.featureNm << " nm die ===\n\n";

  std::cout << "Per-bit strategy comparison:\n";
  util::TextTable t({"strategy", "delay (ps)", "energy/bit (fJ)",
                     "peak I (mA)", "tracks", "noise margin (mV)", "SI ok"});
  for (const auto& s : signaling::compareStrategies(node, length, 0.25)) {
    t.addRow({s.name, fmt(s.link.delay * 1e12, 0),
              fmt(s.link.energyPerTransition * 1e15, 0),
              fmt(s.link.peakSupplyCurrent * 1e3, 1),
              fmt(s.link.routingTracks, 0),
              fmt(s.noise.noiseMargin * 1e3, 1),
              s.noise.passes() ? "yes" : "NO"});
  }
  t.print(std::cout);

  const auto bus = signaling::compareBus(node, bits, length, 0.25);
  std::cout << "\nBus totals: " << fmt(bus.fullSwing.powerAtGlobalClock, 2)
            << " W full-swing vs "
            << fmt(bus.lowSwingDifferential.powerAtGlobalClock, 2)
            << " W low-swing differential (" << fmt(bus.powerRatio, 1)
            << "x), peak current " << fmt(bus.peakCurrentRatio, 1)
            << "x lower, routing " << fmt(bus.trackRatio, 2)
            << "x the tracks.\n\n";

  // Waveform-level validation of the low-swing timing premise: the far
  // end of the RC line reaches the receiver threshold (10 % of Vdd) long
  // before full settling.
  const auto rc = interconnect::computeWireRc(interconnect::topLevelWire(node));
  sim::Circuit ckt;
  const int in = ckt.node();
  ckt.add(sim::VoltageSource{
      in, 0, sim::Waveform::pulse(0, node.vdd, 10 * ps, 5 * ps, 1.0, 5 * ps)});
  const int segments = 24;
  int prev = in, far = in;
  for (int i = 0; i < segments; ++i) {
    const int next = ckt.node();
    ckt.add(sim::Resistor{prev, next, rc.resistancePerM * length / segments});
    ckt.add(sim::Capacitor{next, 0, rc.totalCapPerM() * length / segments});
    prev = next;
    far = next;
  }
  sim::Simulator sim(ckt);
  const auto tr = sim.transient(6 * ns, 2 * ps);
  const double t10 = tr.crossingTime(far, 0.10 * node.vdd, true);
  const double t50 = tr.crossingTime(far, 0.50 * node.vdd, true);
  std::cout << "Waveform check (bare RC line, ideal driver): far end hits"
               " the 10 % receiver threshold at "
            << fmt(t10 * 1e12, 0) << " ps vs " << fmt(t50 * 1e12, 0)
            << " ps for the 50 % full-swing point — sensing a small swing"
               " early is where the delay advantage comes from.\n";
  return 0;
}
