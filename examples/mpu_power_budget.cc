// Scenario: power-budgeting a hypothetical 70 nm desktop MPU.
//
// Walks the paper's Section 2.1/3.1 reasoning as a design exercise:
//  1. total and static power budgets from the roadmap,
//  2. packaging choice with and without dynamic thermal management,
//  3. a closed-loop DTM simulation on a day-in-the-life workload,
//  4. the standby-current problem and what dual-Vth buys back.
#include <iostream>

#include "core/analysis.h"
#include "device/mosfet.h"
#include "thermal/cooling_cost.h"
#include "thermal/dtm.h"
#include "util/table.h"
#include "util/units.h"

int main() {
  using namespace nano;
  using namespace nano::units;
  using util::fmt;

  const auto& node = tech::nodeByFeature(70);
  std::cout << "=== Power budget for a " << node.featureNm << " nm MPU ===\n"
            << "Roadmap: " << fmt(node.maxPower, 0) << " W max at "
            << fmt(node.vdd, 2) << " V (" << fmt(node.supplyCurrent(), 0)
            << " A), Tj <= " << fmt(toCelsius(node.tjMax), 0) << " C\n"
            << "ITRS static cap (10 % of max): "
            << fmt(0.1 * node.maxPower, 1) << " W = "
            << fmt(0.1 * node.maxPower / node.vdd, 1) << " A of standby"
            << " current\n\n";

  // --- Packaging, with and without DTM --------------------------------
  std::cout << "Packaging decision:\n";
  const auto savings =
      thermal::dtmCostSavings(node.maxPower, node.tjMax, node.tAmbient);
  util::TextTable p({"rating", "power (W)", "theta_ja needed", "solution",
                     "cost"});
  const auto& solTheo = thermal::cheapestSolutionFor(
      savings.theoreticalPower, node.tjMax, node.tAmbient);
  p.addRow({"theoretical worst case", fmt(savings.theoreticalPower, 0),
            fmt(savings.thetaJaTheoretical, 3), solTheo.name,
            "$" + fmt(savings.costTheoreticalUsd, 0)});
  const auto& solEff = thermal::cheapestSolutionFor(
      savings.effectivePower, node.tjMax, node.tAmbient);
  p.addRow({"effective worst case (DTM)", fmt(savings.effectivePower, 0),
            fmt(savings.thetaJaEffective, 3), solEff.name,
            "$" + fmt(savings.costEffectiveUsd, 0)});
  p.print(std::cout);

  // --- Closed-loop DTM check ------------------------------------------
  std::cout << "\nClosed-loop check with the cheaper package:\n";
  const thermal::ThermalPackage pkg(solEff.thetaJa, 0.02);
  thermal::DtmPolicy policy = thermal::defaultPolicyFor(node);
  util::Rng rng(7);
  const auto day = thermal::typicalApplication(rng, 0.5);
  const auto dayResult = thermal::simulateDtm(pkg, day, node.maxPower,
                                              node.tAmbient, policy);
  const auto virusResult =
      thermal::simulateDtm(pkg, thermal::powerVirus(0.5), node.maxPower,
                           node.tAmbient, policy);
  std::cout << "  applications: max Tj "
            << fmt(toCelsius(dayResult.maxTemperature), 1) << " C, "
            << fmt(100 * dayResult.throughputFraction, 1)
            << " % throughput\n"
            << "  power virus:  max Tj "
            << fmt(toCelsius(virusResult.maxTemperature), 1) << " C, "
            << fmt(100 * virusResult.throughputFraction, 1)
            << " % throughput ("
            << fmt(100 * virusResult.throttledFraction, 0)
            << " % of time throttled)\n";

  // --- Standby current and dual-Vth ------------------------------------
  std::cout << "\nStandby current at the Table-2 operating point (and how"
               " it explodes two nodes later):\n";
  util::TextTable s({"node (nm)", "Ioff (nA/um)", "all low-Vth (A)",
                     "budget (A)", "after dual-Vth (A)"});
  for (int f : {70, 50, 35}) {
    const auto& n = tech::nodeByFeature(f);
    const double vth = device::solveVthForIon(n, n.ionTarget);
    const auto dev = device::Mosfet::fromNode(n, vth);
    const double totalWidth = static_cast<double>(n.logicTransistors) / 2.0 *
                              3.0 * (n.featureNm * nm);
    const double standby = dev.ioff() * totalWidth;
    const double budget = 0.1 * n.maxPower / n.vdd;
    // 75 % of device width moves to the +100 mV flavor (~15x less leaky).
    const double afterDualVth = standby * (0.25 + 0.75 / 15.2);
    s.addRow({std::to_string(f), fmt(dev.ioff() * 1e3, 0), fmt(standby, 1),
              fmt(budget, 1), fmt(afterDualVth, 1)});
  }
  s.print(std::cout);
  std::cout << "At 70 nm a single low Vth still fits the budget; by 50 nm"
               " it is far over, and dual-Vth insertion (Section 3.2.2) is"
               " what brings standby current back toward the ITRS cap —"
               " the paper's \"98 % static power reduction needed by the"
               " end of the roadmap\" in action.\n";
  return 0;
}
