// Scenario: a low-power implementation flow for a register-bounded design
// slice — the paper's Section 3.3 "multi-layered approach": clustered
// voltage scaling, then dual-Vth, then re-sizing, with stage-by-stage
// power reporting and a comparison against the sizing-first practice the
// paper criticizes.
#include <iostream>

#include "circuit/generator.h"
#include "obs/obs.h"
#include "opt/combined.h"
#include "util/table.h"

int main() {
  using namespace nano;
  using util::fmt;

  const auto& node = tech::nodeByFeature(70);
  const circuit::Library lib(node);

  // A 1000-gate slice of pipelined random logic at uniform drive 2 — the
  // kind of netlist synthesis hands to the power-optimization flow.
  util::Rng rng(31415);
  circuit::GeneratorConfig cfg;
  cfg.gates = 1000;
  cfg.outputs = 64;
  circuit::Netlist design = circuit::pipelinedLogic(lib, cfg, rng, 8);
  for (int g : design.gateIds()) {
    const auto& cell = design.node(g).cell;
    design.replaceCell(g, lib.pick(cell.function, 2.0));
  }

  const auto timing = sta::analyze(design);
  const auto power0 = power::computePower(design, 1.0 / timing.clockPeriod);
  std::cout << "Design: " << design.gateCount() << " gates at " << node.featureNm
            << " nm, clock " << fmt(timing.clockPeriod * 1e12, 0)
            << " ps, starting power " << fmt(power0.total() * 1e6, 1)
            << " uW (leakage " << fmt(100 * power0.leakage / power0.total(), 1)
            << " %)\n";
  std::cout << "Slack profile: "
            << fmt(100 * sta::fractionOfPathsFasterThan(timing, design, 0.5), 0)
            << " % of paths finish in under half the clock\n\n";

  const opt::FlowResult flow = opt::runFlow(design, lib);
  util::TextTable t({"stage", "power (uW)", "dynamic", "leakage",
                     "converters", "low-Vdd", "high-Vth", "timing"});
  t.addRow({"(start)", fmt(flow.powerBefore.total() * 1e6, 1),
            fmt(flow.powerBefore.dynamic * 1e6, 1),
            fmt(flow.powerBefore.leakage * 1e6, 2), "-", "0 %", "0 %", "met"});
  for (const auto& s : flow.stages) {
    t.addRow({s.name, fmt(s.power.total() * 1e6, 1),
              fmt(s.power.dynamic * 1e6, 1), fmt(s.power.leakage * 1e6, 2),
              fmt(s.power.levelConverter * 1e6, 2),
              fmt(100 * s.fractionLowVdd, 0) + " %",
              fmt(100 * s.fractionHighVth, 0) + " %",
              s.timing.meetsTiming() ? "met" : "VIOLATED"});
  }
  t.print(std::cout);
  std::cout << "Total saving: " << fmt(100 * flow.totalSavings(), 1)
            << " % at unchanged clock.\n\n";

  // The ordering experiment.
  opt::FlowOptions sizeFirst;
  sizeFirst.stages = {opt::FlowStage::Downsize, opt::FlowStage::DualVth,
                      opt::FlowStage::MultiVdd};
  const opt::FlowResult other = opt::runFlow(design, lib, sizeFirst);
  std::cout << "Ordering matters (Section 3.3): Vdd-first reaches "
            << fmt(100 * flow.totalSavings(), 1)
            << " % total savings; sizing-first only "
            << fmt(100 * other.totalSavings(), 1)
            << " % — downsizing consumed the slack the quadratic Vdd"
               " saving needed ("
            << fmt(100 * other.stages.back().fractionLowVdd, 0)
            << " % vs " << fmt(100 * flow.stages[0].fractionLowVdd, 0)
            << " % of gates at Vdd,l).\n";

  if (obs::enabled()) {
    std::cout << '\n';
    obs::printRunReport(std::cout);
  }
  return 0;
}
