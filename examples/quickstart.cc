// Quickstart: characterize a nanometer technology node end to end with a
// few library calls — device corner, gate speed, power budget, packaging,
// global wiring and power delivery.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/quickstart [feature_nm]
#include <cstdlib>
#include <string>
#include <iostream>

#include "circuit/generator.h"
#include "core/analysis.h"
#include "core/report.h"
#include "device/gate_model.h"
#include "obs/obs.h"
#include "opt/dual_vth.h"
#include "powergrid/grid_model.h"
#include "sim/circuit_sim.h"

namespace {

// With observability on, exercise every instrumented subsystem once so the
// run report shows a full phase breakdown: STA + dual-Vth on a small
// netlist, a power-grid CG solve, and a transient inverter-chain sim (the
// device::solveVthForIon bisection is already covered by summarizeNode).
void runInstrumentedMiniFlow(int feature) {
  using namespace nano;
  NANO_OBS_SPAN("quickstart/mini_flow");
  const auto& node = tech::nodeByFeature(feature);
  const circuit::Library lib(node);
  util::Rng rng(1);
  circuit::GeneratorConfig cfg;
  cfg.gates = 400;
  cfg.outputs = 25;
  const circuit::Netlist nl = circuit::pipelinedLogic(lib, cfg, rng, 8);
  (void)opt::runDualVth(nl, lib);

  powergrid::GridConfig grid;
  grid.railPitch = grid.bumpPitch = 160e-6;
  grid.railWidth = 2e-6;
  grid.tilesX = grid.tilesY = 3;
  grid.hotspotCellsRail = 1;
  (void)powergrid::solveGrid(grid);

  const double vth = device::solveVthForIon(node, node.ionTarget);
  auto model =
      std::make_shared<device::Mosfet>(device::Mosfet::fromNode(node, vth));
  device::InverterModel inv(node, vth, node.vdd);
  sim::Circuit ckt;
  const int vdd = ckt.node();
  ckt.add(sim::VoltageSource{vdd, 0, sim::Waveform::dc(node.vdd)});
  const int in = ckt.node();
  ckt.add(sim::VoltageSource{
      in, 0, sim::Waveform::pulse(0, node.vdd, 20e-12, 5e-12, 1, 5e-12)});
  int prev = in;
  for (int i = 0; i < 4; ++i) {
    const int out = ckt.node();
    ckt.addInverter(prev, out, vdd, model, inv.wn(), inv.wp());
    prev = out;
  }
  sim::Simulator sim(ckt);
  (void)sim.transient(100e-12, 0.5e-12);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nano;

  int feature = 50;  // default: the 50 nm node the paper centers on
  if (argc > 1 && std::string(argv[1]) == "all") {
    core::printRoadmapComparison(std::cout);
    return 0;
  }
  if (argc > 1 && std::string(argv[1]) == "--report") {
    obs::setEnabled(true);
    if (argc > 2) feature = std::atoi(argv[2]);
  } else if (argc > 1) {
    feature = std::atoi(argv[1]);
  }

  std::cout << "nanodesign quickstart — one-call node characterization\n\n";
  try {
    const core::NodeSummary summary = core::summarizeNode(feature);
    core::printNodeSummary(std::cout, summary);
  } catch (const std::out_of_range&) {
    std::cerr << "Node " << feature
              << " nm is not on the roadmap. Available:";
    for (int f : tech::roadmapFeatures()) std::cerr << ' ' << f;
    std::cerr << '\n';
    return 1;
  }

  std::cout << "\nLower-level access: the same numbers come from the"
               " individual models —\n"
               "  device::solveVthForIon()        Table 2's Vth solve\n"
               "  device::InverterModel           gate delay/energy/leakage\n"
               "  interconnect::analyzeGlobalWiring()  repeater rollup\n"
               "  thermal::cheapestSolutionFor()  packaging pick\n"
               "  powergrid::minPitchReport()     Figure 5 rail sizing\n"
               "See the bench/ binaries for every figure and table of the"
               " paper.\n";

  // With NANO_OBS=1 (or --report) every solver above left timers and
  // convergence counters behind; show where the time went.
  if (obs::enabled()) {
    runInstrumentedMiniFlow(feature);
    std::cout << '\n';
    obs::printRunReport(std::cout);
  } else {
    std::cout << "\nRun with --report (or NANO_OBS=1) for a phase/solver"
                 " breakdown of this run.\n";
  }
  return 0;
}
