// Quickstart: characterize a nanometer technology node end to end with a
// few library calls — device corner, gate speed, power budget, packaging,
// global wiring and power delivery.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/quickstart [feature_nm]
#include <cstdlib>
#include <string>
#include <iostream>

#include "core/analysis.h"
#include "core/report.h"

int main(int argc, char** argv) {
  using namespace nano;

  int feature = 50;  // default: the 50 nm node the paper centers on
  if (argc > 1 && std::string(argv[1]) == "all") {
    core::printRoadmapComparison(std::cout);
    return 0;
  }
  if (argc > 1) feature = std::atoi(argv[1]);

  std::cout << "nanodesign quickstart — one-call node characterization\n\n";
  try {
    const core::NodeSummary summary = core::summarizeNode(feature);
    core::printNodeSummary(std::cout, summary);
  } catch (const std::out_of_range&) {
    std::cerr << "Node " << feature
              << " nm is not on the roadmap. Available:";
    for (int f : tech::roadmapFeatures()) std::cerr << ' ' << f;
    std::cerr << '\n';
    return 1;
  }

  std::cout << "\nLower-level access: the same numbers come from the"
               " individual models —\n"
               "  device::solveVthForIon()        Table 2's Vth solve\n"
               "  device::InverterModel           gate delay/energy/leakage\n"
               "  interconnect::analyzeGlobalWiring()  repeater rollup\n"
               "  thermal::cheapestSolutionFor()  packaging pick\n"
               "  powergrid::minPitchReport()     Figure 5 rail sizing\n"
               "See the bench/ binaries for every figure and table of the"
               " paper.\n";
  return 0;
}
